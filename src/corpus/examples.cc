#include "corpus/examples.h"

#include "corpus/builder.h"

namespace rock::corpus {

using toyc::Stmt;
using toyc::UsageFunc;

namespace {

/** Usage function: allocate @p cls and call @p methods in order. */
UsageFunc
driver(const std::string& name, const std::string& cls,
       const std::vector<std::string>& methods)
{
    UsageFunc fn;
    fn.name = name;
    fn.body.push_back(Stmt::new_object("obj", cls));
    for (const auto& m : methods)
        fn.body.push_back(Stmt::virt_call("obj", m));
    return fn;
}

} // namespace

CorpusProgram
streams_program()
{
    ProgramBuilder b("streams");
    b.cls("Stream", {}, {"send"});
    b.cls("ConfirmableStream", {"Stream"}, {"confirm"});
    b.cls("FlushableStream", {"Stream"}, {"flush", "close"});

    // The useX drivers of paper Fig. 3 (usage as seen in Fig. 5/7).
    b.usage(driver("useStream", "Stream", {"send", "send", "send"}));
    b.usage(driver("useConfirmableStream", "ConfirmableStream",
                   {"send", "confirm", "send", "confirm", "send",
                    "confirm"}));
    b.usage(driver("useFlushableStream", "FlushableStream",
                   {"send", "send", "send", "flush", "close"}));
    // A couple of extra call sites so the models have more than a
    // single observation per type.
    b.usage(driver("useStream2", "Stream", {"send", "send", "send"}));
    b.usage(driver("useConfirmableStream2", "ConfirmableStream",
                   {"send", "confirm", "send", "confirm"}));
    b.usage(driver("useFlushableStream2", "FlushableStream",
                   {"send", "send", "flush", "close"}));

    CorpusProgram result;
    result.name = "streams";
    result.program = b.build();
    // Parent-constructor calls are inlined away: reproducing the
    // paper's setting where structure alone cannot pick
    // FlushableStream's parent.
    result.options.parent_ctor_calls = false;
    return result;
}

CorpusProgram
datasources_program()
{
    ProgramBuilder b("datasources");
    // Note the differing vtable sizes of the two middle classes:
    // stripped binaries identify methods only by slot index, so two
    // siblings whose distinguishing methods land on the same slot are
    // behaviorally indistinguishable. Internal sources add two
    // methods (localPath, refresh), external sources one
    // (verifyCredentials), keeping the branches separable -- and
    // letting structural rule 1 forbid External deriving from
    // Internal outright.
    b.cls("DataSource", {}, {"connect", "read"}, {}, 1);
    b.cls("InternalDataSource", {"DataSource"},
          {"localPath", "refresh"}, {}, 1);
    b.cls("ExternalDataSource", {"DataSource"},
          {"verifyCredentials"}, {}, 2);
    b.cls("CachedInternalSource", {"InternalDataSource"}, {"evict"},
          {}, 1);
    b.cls("FileInternalSource", {"InternalDataSource"}, {"stat"}, {},
          2);
    b.cls("HttpExternalSource", {"ExternalDataSource"}, {"redirect"},
          {}, 1);
    b.cls("FtpExternalSource", {"ExternalDataSource"}, {"passive"},
          {}, 2);

    // Internal reads (paper Fig. 1, readInternal): the base pattern
    // plus a refresh of the local mirror.
    for (const char* cls :
         {"InternalDataSource", "CachedInternalSource",
          "FileInternalSource"}) {
        b.usage(driver(std::string("readInternal_") + cls, cls,
                       {"connect", "read", "refresh"}));
        b.usage(driver(std::string("readInternalAgain_") + cls, cls,
                       {"connect", "read", "refresh", "read"}));
    }
    // External reads (readExternal): the base pattern plus credential
    // verification.
    for (const char* cls :
         {"ExternalDataSource", "HttpExternalSource",
          "FtpExternalSource"}) {
        b.usage(driver(std::string("readExternal_") + cls, cls,
                       {"connect", "read", "verifyCredentials"}));
        b.usage(driver(std::string("readExternalAgain_") + cls, cls,
                       {"connect", "read", "verifyCredentials",
                        "verifyCredentials"}));
    }
    // Base usage.
    b.usage(driver("probe_DataSource", "DataSource",
                   {"connect", "read"}));
    b.usage(driver("probe_DataSource2", "DataSource",
                   {"connect", "read", "read"}));
    // Subtype-specific touches that keep the leaves distinguishable.
    b.usage(driver("cache_sweep", "CachedInternalSource",
                   {"connect", "read", "refresh", "evict"}));
    b.usage(driver("file_stat", "FileInternalSource",
                   {"connect", "read", "refresh", "stat"}));
    b.usage(driver("http_redirect", "HttpExternalSource",
                   {"connect", "read", "verifyCredentials",
                    "redirect"}));
    b.usage(driver("ftp_passive", "FtpExternalSource",
                   {"connect", "read", "verifyCredentials",
                    "passive"}));

    CorpusProgram result;
    result.name = "datasources";
    result.program = b.build();
    result.options.parent_ctor_calls = false;
    return result;
}

CorpusProgram
echoparams_program()
{
    // Four structurally equivalent types: identical slot counts, a
    // shared inherited implementation (m0), no constructor cues --
    // 4^3 = 64 structurally co-optimal hierarchies (Section 6.4).
    ProgramBuilder b("echoparams");
    b.cls("Handler", {}, {"m0", "m1", "m2"});
    b.cls("EchoText", {"Handler"}, {}, {"m1", "m2"});
    b.cls("EchoHex", {"Handler"}, {}, {"m1", "m2"}, 2);
    b.cls("EchoJson", {"Handler"}, {}, {"m1", "m2"}, 3);

    b.usage(driver("run_base", "Handler", {"m0", "m1"}));
    b.usage(driver("run_base2", "Handler", {"m0", "m1"}));
    b.usage(driver("run_text", "EchoText", {"m0", "m1", "m2"}));
    b.usage(driver("run_text2", "EchoText", {"m0", "m1", "m2", "m2"}));
    b.usage(driver("run_hex", "EchoHex", {"m0", "m1", "m2", "m0"}));
    b.usage(driver("run_hex2", "EchoHex", {"m0", "m1", "m2", "m0",
                                           "m2"}));
    b.usage(driver("run_json", "EchoJson", {"m0", "m1", "m1", "m2"}));
    b.usage(driver("run_json2", "EchoJson", {"m0", "m1", "m1", "m2",
                                             "m2"}));

    CorpusProgram result;
    result.name = "echoparams";
    result.program = b.build();
    result.options.parent_ctor_calls = false;
    return result;
}

CorpusProgram
cgrid_program()
{
    ProgramBuilder b("cgrid");
    // Abstract MFC-like bases: optimized out of the binary.
    b.cls("CEdit", {}, {"onEdit", "setText", "getText"});
    b.pure("CEdit", "onEdit");
    b.cls("CDialog", {}, {"onInit", "doModal", "onClose"});
    b.pure("CDialog", "onInit");

    // Each pair inherits a concrete implementation from its abstract
    // base, so the two siblings share vtable entries and land in one
    // family even though the base vanished.
    b.cls("CGridEditorComboBoxEdit", {"CEdit"}, {"dropDown"},
          {"onEdit"});
    b.cls("CGridEditorText", {"CEdit"}, {"selectAll"}, {"onEdit"});
    b.cls("CAboutDlg", {"CDialog"}, {"showVersion"}, {"onInit"});
    b.cls("CGridListCtrlExDlg", {"CDialog"}, {"populate"},
          {"onInit"});

    b.usage(driver("edit_combo", "CGridEditorComboBoxEdit",
                   {"setText", "onEdit", "dropDown", "getText"}));
    b.usage(driver("edit_combo2", "CGridEditorComboBoxEdit",
                   {"setText", "onEdit", "dropDown"}));
    b.usage(driver("edit_text", "CGridEditorText",
                   {"setText", "onEdit", "selectAll", "getText"}));
    b.usage(driver("edit_text2", "CGridEditorText",
                   {"setText", "onEdit", "getText"}));
    b.usage(driver("about", "CAboutDlg",
                   {"onInit", "showVersion", "doModal", "onClose"}));
    b.usage(driver("main_dlg", "CGridListCtrlExDlg",
                   {"onInit", "populate", "doModal", "onClose"}));
    b.usage(driver("main_dlg2", "CGridListCtrlExDlg",
                   {"onInit", "populate", "populate", "doModal",
                    "onClose"}));

    CorpusProgram result;
    result.name = "cgrid";
    result.program = b.build();
    result.options.parent_ctor_calls = false;
    result.options.omit_abstract_classes = true;
    return result;
}

CorpusProgram
multiple_inheritance_program()
{
    ProgramBuilder b("mi");
    b.cls("Serializable", {}, {"serialize", "deserialize"});
    b.cls("Observable", {}, {"attach", "notify"});
    b.cls("Model", {"Serializable", "Observable"}, {"update"},
          {"serialize", "notify"});
    b.cls("Snapshot", {"Serializable"}, {"freeze"});

    b.usage(driver("save", "Serializable",
                   {"serialize", "deserialize"}));
    b.usage(driver("watch", "Observable", {"attach", "notify"}));
    b.usage(driver("edit_model", "Model",
                   {"serialize", "attach", "update", "notify"}));
    b.usage(driver("snapshot", "Snapshot",
                   {"serialize", "freeze", "deserialize"}));

    CorpusProgram result;
    result.name = "mi";
    result.program = b.build();
    // Keep the structural cues: multiple-inheritance detection reads
    // the parent-constructor calls.
    result.options.parent_ctor_calls = true;
    return result;
}

CorpusProgram
typeinf_ablation_program()
{
    ProgramBuilder b("typeinf_mi");

    // Two base/decoy/derived triplets. Within a triplet the bases
    // share folded methods (one family), the decoy carries an extra
    // noise method the derived class also declares (folded too --
    // error source 1), and the derived class's parent-ctor call is
    // inlined away below. The decoy's model then explains every word
    // the derived class emits while the true parent's does not, so
    // the DKL objective alone picks the decoy; the inlined parent
    // ctor leaves a vptr-overwrite fact for typeinf to solve.
    b.cls("Lz", {}, {}, {}, 1);
    b.noise_method("Lz", "pack", 3);
    b.noise_method("Lz", "unpack", 5);
    b.cls("Rle", {}, {}, {}, 1);
    b.noise_method("Rle", "pack", 3);
    b.noise_method("Rle", "unpack", 5);
    b.noise_method("Rle", "probe", 7);
    b.cls("LzStream", {"Lz"}, {}, {}, 1);
    b.noise_method("LzStream", "probe", 7);
    b.cls("LzStreamTell", {"LzStream"}, {"tell"});
    b.motif("Lz", {"pack", "unpack"});
    b.motif("Rle", {"pack", "unpack", "probe"});
    b.motif("LzStream", {"probe"});
    b.motif("LzStreamTell", {"tell"});

    b.cls("Crc", {}, {}, {}, 1);
    b.noise_method("Crc", "sum", 13);
    b.noise_method("Crc", "reset", 17);
    b.cls("Adler", {}, {}, {}, 1);
    b.noise_method("Adler", "sum", 13);
    b.noise_method("Adler", "reset", 17);
    b.noise_method("Adler", "probe", 19);
    b.cls("CrcFile", {"Crc"}, {}, {}, 1);
    b.noise_method("CrcFile", "probe", 19);
    b.motif("Crc", {"sum", "reset"});
    b.motif("Adler", {"sum", "reset", "probe"});
    b.motif("CrcFile", {"probe"});

    // Genuine multiple inheritance: its kept parent-ctor calls keep
    // rule 3 exercised in both configurations.
    b.cls("Archive", {}, {"open", "close"});
    b.cls("LzArchive", {"Lz", "Archive"}, {"list"});
    b.motif("Archive", {"open", "close"});
    b.motif("LzArchive", {"list"});

    b.standard_scenarios(2);

    CorpusProgram result;
    result.name = "typeinf_mi";
    result.program = b.build();
    result.options.parent_ctor_calls = true;
    // The optimization that defeats rule 3: the derived classes'
    // parent-ctor calls are inlined, so no forced parent exists and
    // the decoy misranking decides -- unless typeinf fuses its facts.
    result.options.force_inline_parent_ctor = {"LzStream", "CrcFile"};
    return result;
}

} // namespace rock::corpus

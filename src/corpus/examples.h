/**
 * @file
 * The paper's motivating programs, rebuilt in toyc.
 *
 *  - streams_program(): Figs. 3-8 -- Stream / ConfirmableStream /
 *    FlushableStream, where structure alone cannot decide
 *    FlushableStream's parent;
 *  - datasources_program(): Figs. 1-2 -- the internal/external data
 *    source CFI scenario;
 *  - echoparams_program(): the Section 6.4 case of four structurally
 *    equivalent types (64 structurally co-optimal hierarchies);
 *  - cgrid_program(): the Fig. 9 CGridListCtrlEx situation -- two
 *    pairs of types whose abstract parents (CEdit / CDialog) are
 *    optimized out of the binary;
 *  - multiple_inheritance_program(): Section 5.3;
 *  - typeinf_ablation_program(): multiple-inheritance corpus where
 *    folded noise methods (error source 1) make a decoy sibling the
 *    statistically closest parent and the true parent-ctor calls are
 *    inlined away -- only the typeinf overwrite facts recover the
 *    edges (EXPERIMENTS.md "Structural-subtyping fusion").
 */
#pragma once

#include <string>

#include "toyc/ast.h"
#include "toyc/compiler.h"

namespace rock::corpus {

/** A program together with the options it is meant to be built with. */
struct CorpusProgram {
    std::string name;
    toyc::Program program;
    toyc::CompileOptions options;
};

CorpusProgram streams_program();
CorpusProgram datasources_program();
CorpusProgram echoparams_program();
CorpusProgram cgrid_program();
CorpusProgram multiple_inheritance_program();
CorpusProgram typeinf_ablation_program();

} // namespace rock::corpus

/**
 * @file
 * Terse construction of toyc programs for examples, tests and the
 * benchmark corpus.
 *
 * The central behavioral idea mirrors the paper's Hypothesis 4.1: a
 * derived type inherits its ancestors' behaviors and adds its own.
 * ProgramBuilder therefore associates a *motif* (a short statement
 * pattern over the class's methods) with every class, and
 * add_scenario() emits a usage function whose body is the
 * concatenation of all inherited motifs plus the class's own -- so
 * tracelets of a child observably contain the tracelets of its
 * parents.
 */
#pragma once

#include <string>
#include <vector>

#include "toyc/ast.h"

namespace rock::corpus {

/**
 * Append a body pattern unique to integer @p id (the id encoded as a
 * read/write sequence over flattened field @p field), guaranteeing the
 * enclosing method does not fold with any other tagged method.
 */
void distinct_tag(std::vector<toyc::Stmt>& body, int id, int field = 0);

/** Fluent builder over toyc::Program. */
class ProgramBuilder {
  public:
    explicit ProgramBuilder(std::string name);

    /**
     * Declare a class.
     *
     * @param name        class name
     * @param parents     direct bases (empty = root)
     * @param new_methods names of virtual methods introduced here
     * @param overrides   names of inherited methods overridden here
     * @param num_fields  own data fields
     */
    ProgramBuilder& cls(const std::string& name,
                        std::vector<std::string> parents = {},
                        std::vector<std::string> new_methods = {},
                        std::vector<std::string> overrides = {},
                        int num_fields = 1);

    /** Mark @p method of @p name pure virtual (makes the class
     *  abstract). */
    ProgramBuilder& pure(const std::string& name,
                         const std::string& method);

    /** Append statements to the body of @p cls::@p method. */
    ProgramBuilder& method_body(const std::string& cls,
                                const std::string& method,
                                std::vector<toyc::Stmt> body);

    /** Append statements to @p cls's constructor body. */
    ProgramBuilder& ctor_body(const std::string& cls,
                              std::vector<toyc::Stmt> body);

    /**
     * Set the class's behavioral motif: method names called (in
     * order) on instances by every scenario of this class and of its
     * descendants.
     */
    ProgramBuilder& motif(const std::string& cls,
                          std::vector<std::string> methods);

    /**
     * Emit a scenario (usage function) named use_<cls><suffix> that
     * allocates an instance of @p cls and plays the motifs of all its
     * ancestors (root first) followed by its own, then any @p extra
     * statements on variable "obj".
     */
    ProgramBuilder& add_scenario(const std::string& cls,
                                 std::vector<toyc::Stmt> extra = {},
                                 const std::string& suffix = "");

    /** Add a raw usage function. */
    ProgramBuilder& usage(toyc::UsageFunc fn);

    /**
     * Emit @p per_class scenarios for every concrete class declared
     * so far (abstract classes are skipped). Scenario k appends k
     * extra calls of the class's last motif method, so repeated
     * scenarios do not fold into one function.
     */
    ProgramBuilder& standard_scenarios(int per_class = 2);

    /**
     * Add a method whose body depends only on @p noise_id: two
     * classes given the same noise_id (and the same object layout
     * prefix) produce byte-identical functions that the linker folds,
     * placing one pointer into both vtables -- the paper's error
     * source 1. The method is appended to the vtable.
     */
    ProgramBuilder& noise_method(const std::string& cls,
                                 const std::string& method,
                                 int noise_id);

    /** Finish and return the program. */
    toyc::Program build();

    /** Access the program under construction. */
    toyc::Program& program() { return prog_; }

  private:
    toyc::ClassDecl& find(const std::string& name);
    /** Motifs of @p cls's ancestor chain, root first, then its own. */
    std::vector<std::string> full_behavior(const std::string& cls) const;

    toyc::Program prog_;
    std::vector<std::pair<std::string, std::vector<std::string>>>
        motifs_;
    int scenario_count_ = 0;
    int tag_count_ = 0;
};

} // namespace rock::corpus

#include "corpus/benchmarks.h"

#include "corpus/builder.h"
#include "support/error.h"

namespace rock::corpus {

using toyc::CompileOptions;

namespace {

/**
 * A clean tree: binary-heap shaped, every child introduces
 * @p child_methods new virtual methods, constructor cues intact, so
 * the structural analysis alone resolves it (paper Section 5.2 rule
 * 3). Class i's parent is class (i-1)/2.
 */
void
clean_tree(ProgramBuilder& b, const std::string& prefix, int total,
           int child_methods = 1)
{
    for (int i = 0; i < total; ++i) {
        std::string name = prefix + std::to_string(i);
        std::vector<std::string> methods;
        if (i == 0) {
            methods = {"op_" + name, "go_" + name};
        } else {
            for (int m = 0; m < child_methods; ++m) {
                methods.push_back("op" + std::to_string(m) + "_" +
                                  name);
            }
        }
        std::vector<std::string> parents;
        if (i > 0)
            parents = {prefix + std::to_string((i - 1) / 2)};
        b.cls(name, parents, methods, {}, 1 + i % 3);
        b.motif(name, methods);
    }
}

/**
 * A star of structurally equivalent types: the root declares three
 * virtual methods; every child overrides two of them (the third stays
 * shared -- the family fingerprint) and adds nothing, so all member
 * vtables have identical sizes; constructor cues are inlined away.
 * Structure admits (k+1)^k hierarchies; behavior must disambiguate.
 *
 * @param twin_mod when > 0, children reuse behavioral motifs modulo
 *        this value, creating behavioral twins the SLM cannot
 *        separate (the noise driving Analyzer/Smoothing errors).
 */
void
star_family(ProgramBuilder& b, const std::string& prefix, int children,
            CompileOptions& opts, int twin_mod = 0)
{
    std::string root = prefix + "R";
    std::string a = "base_" + prefix;
    std::string m = "mid_" + prefix;
    std::string x = "ext_" + prefix;
    b.cls(root, {}, {a, m, x}, {}, 1);
    b.motif(root, {a, m});
    for (int i = 0; i < children; ++i) {
        std::string name = prefix + std::to_string(i);
        int v = twin_mod > 0 ? i % twin_mod : i;
        // Twins share their field layout too: identical tag offsets
        // leave the SLM with (almost) nothing to separate them by.
        b.cls(name, {root}, {}, {m, x}, 1 + v);
        opts.force_inline_parent_ctor.insert(name);
        std::vector<std::string> motif{x};
        for (int k = 0; k <= v % 3; ++k)
            motif.push_back(m);
        if (v & 1)
            motif.push_back(x);
        if (v & 4)
            motif.push_back(a);
        if (v & 8)
            motif.push_back(x);
        b.motif(name, motif);
    }
}

/**
 * A tree whose root gets separated from its children: every child
 * overrides *all* inherited methods (no shared vtable entries, paper
 * Section 5.1 caveat) and its parent-constructor call is inlined
 * (no rule-3 evidence). The binary shows the root and each child as
 * unrelated singleton families; every child subtree is lost from the
 * root's successor set (the tinyxml error mode).
 */
void
split_tree(ProgramBuilder& b, const std::string& prefix, int children,
           CompileOptions& opts)
{
    std::string root = prefix + "R";
    std::string p = "p_" + prefix;
    std::string q = "q_" + prefix;
    b.cls(root, {}, {p, q}, {}, 1);
    b.motif(root, {p, q});
    for (int i = 0; i < children; ++i) {
        std::string name = prefix + std::to_string(i);
        b.cls(name, {root}, {"own_" + name}, {p, q}, 1 + i % 4);
        opts.force_inline_parent_ctor.insert(name);
        b.motif(name, {"own_" + name});
    }
}

/**
 * Two concrete siblings under an abstract base that the optimizer
 * removes from the binary (the CGridListCtrlEx / Fig. 9 situation).
 * The siblings inherit concrete implementations from the base, so
 * they share vtable entries and form one two-member family whose
 * ground truth is two separate roots.
 */
void
spliced_pair(ProgramBuilder& b, const std::string& prefix)
{
    std::string base = prefix + "Base";
    std::string h = "h_" + prefix;
    std::string u = "u_" + prefix;
    std::string v = "v_" + prefix;
    b.cls(base, {}, {h, u, v}, {}, 1);
    b.pure(base, h);
    b.motif(base, {u, v});
    std::string left = prefix + "L";
    std::string right = prefix + "Rt";
    b.cls(left, {base}, {"own_" + left}, {h}, 1);
    b.motif(left, {h, "own_" + left});
    b.cls(right, {base}, {"own_" + right}, {h}, 2);
    b.motif(right, {"own_" + right, h});
}

/**
 * A small tree prepared to receive a folded singleton: the root has
 * 2 slots (one real method + one noise method), children jump to 4
 * slots. A singleton with 3 slots whose noise method folds with the
 * root's can then only attach under the root (rule 1 excludes the
 * children), keeping the benchmark structurally resolvable while
 * contaminating the root's successor set (the AntispyComplete error
 * mode).
 */
void
fold_target_tree(ProgramBuilder& b, const std::string& prefix,
                 int children, int noise_id)
{
    std::string root = prefix + "R";
    b.cls(root, {}, {"op_" + root}, {}, 1);
    b.noise_method(root, "noise_" + prefix, noise_id);
    b.motif(root, {"op_" + root});
    for (int i = 0; i < children; ++i) {
        std::string name = prefix + std::to_string(i);
        b.cls(name, {root},
              {"op0_" + name, "op1_" + name}, {}, 1 + i % 3);
        b.motif(name, {"op0_" + name, "op1_" + name});
    }
}

/** The singleton folded into @p prefix's fold_target_tree. */
void
folded_singleton(ProgramBuilder& b, const std::string& prefix,
                 const std::string& name, int noise_id)
{
    b.cls(name, {}, {"alpha_" + name, "beta_" + name}, {}, 1);
    b.noise_method(name, "noise2_" + prefix, noise_id);
    b.motif(name, {"alpha_" + name, "beta_" + name});
}

/** Shared wrapper: build the CorpusProgram from a builder. */
CorpusProgram
finish(ProgramBuilder& b, const std::string& name, CompileOptions opts)
{
    b.standard_scenarios(2);
    CorpusProgram program;
    program.name = name;
    program.program = b.build();
    program.options = std::move(opts);
    return program;
}

// --------------------------------------------------------------------
// Structurally resolvable benchmarks (above the line in Table 2)
// --------------------------------------------------------------------

CorpusProgram
bench_antispy()
{
    // 3 types: A <- B (cue-resolved) plus an unrelated singleton C
    // folded into A's family; C can only sit under A. 1 added type.
    ProgramBuilder b("AntispyComplete");
    CompileOptions opts;
    fold_target_tree(b, "A", 1, 100);
    folded_singleton(b, "A", "Spy", 100);
    return finish(b, "AntispyComplete", opts);
}

CorpusProgram
bench_bafprp()
{
    // 23 types: a clean 15-type tree plus a split tree whose root
    // loses its 7 children: 7 missing over 23 = 0.30.
    ProgramBuilder b("bafprp");
    CompileOptions opts;
    clean_tree(b, "T", 15);
    split_tree(b, "S", 7, opts);
    return finish(b, "bafprp", opts);
}

CorpusProgram
bench_cppcheck()
{
    ProgramBuilder b("cppcheck");
    CompileOptions opts;
    clean_tree(b, "T", 3);
    clean_tree(b, "U", 3);
    return finish(b, "cppcheck", opts);
}

CorpusProgram
bench_midilib()
{
    ProgramBuilder b("MidiLib");
    CompileOptions opts;
    clean_tree(b, "T", 8);
    clean_tree(b, "U", 7);
    clean_tree(b, "V", 5);
    return finish(b, "MidiLib", opts);
}

CorpusProgram
bench_patl()
{
    ProgramBuilder b("patl");
    CompileOptions opts;
    clean_tree(b, "T", 2);
    clean_tree(b, "U", 2);
    return finish(b, "patl", opts);
}

CorpusProgram
bench_pop3()
{
    ProgramBuilder b("pop3");
    CompileOptions opts;
    clean_tree(b, "T", 2);
    return finish(b, "pop3", opts);
}

CorpusProgram
bench_smtp()
{
    ProgramBuilder b("smtp");
    CompileOptions opts;
    clean_tree(b, "S", 2);
    return finish(b, "smtp", opts);
}

CorpusProgram
bench_tinyxml()
{
    // 9 types: one tree, every child overrides everything -> the
    // root is placed in a separate family and loses all 8 children:
    // 8 missing over 9 = 0.89 (the paper's worst missing score).
    ProgramBuilder b("tinyxml");
    CompileOptions opts;
    split_tree(b, "X", 8, opts);
    return finish(b, "tinyxml", opts);
}

CorpusProgram
bench_tinyxmlstl()
{
    // 15 types: a 10-type split tree (9 missing -> 0.6) plus a
    // fold-target tree with one folded singleton (added types).
    ProgramBuilder b("tinyxmlSTL");
    CompileOptions opts;
    split_tree(b, "X", 9, opts);
    fold_target_tree(b, "F", 3, 101);
    folded_singleton(b, "F", "Stl", 101);
    return finish(b, "tinyxmlSTL", opts);
}

CorpusProgram
bench_yafe()
{
    // 15 types: three fold-target trees each receiving one folded
    // singleton: 3 added over 15 = 0.2.
    ProgramBuilder b("yafe");
    CompileOptions opts;
    fold_target_tree(b, "A", 2, 110);
    folded_singleton(b, "A", "Fe1", 110);
    fold_target_tree(b, "B", 2, 111);
    folded_singleton(b, "B", "Fe2", 111);
    fold_target_tree(b, "C", 2, 112);
    folded_singleton(b, "C", "Fe3", 112);
    clean_tree(b, "T", 3);
    return finish(b, "yafe", opts);
}

// --------------------------------------------------------------------
// Structurally unresolvable benchmarks (below the line)
// --------------------------------------------------------------------

CorpusProgram
bench_analyzer()
{
    // 24 types: two 8-member equivalent stars with behavioral twins
    // (SLM errors expected), a split tree losing 5 children
    // (0.21 missing), and a clean pair.
    ProgramBuilder b("Analyzer");
    CompileOptions opts;
    star_family(b, "P", 7, opts, /*twin_mod=*/3);
    star_family(b, "Q", 7, opts, /*twin_mod=*/3);
    split_tree(b, "S", 5, opts);
    clean_tree(b, "T", 2);
    return finish(b, "Analyzer", opts);
}

CorpusProgram
bench_cgridlistctrlex()
{
    // 28 types: four clean cue-resolved trees plus two sibling pairs
    // whose abstract parents are optimized out (Fig. 9 splicing).
    ProgramBuilder b("CGridListCtrlEx");
    CompileOptions opts;
    clean_tree(b, "T", 8);
    clean_tree(b, "U", 7);
    clean_tree(b, "V", 5);
    clean_tree(b, "W", 4);
    spliced_pair(b, "Edit");
    spliced_pair(b, "Dlg");
    return finish(b, "CGridListCtrlEx", opts);
}

CorpusProgram
bench_echoparams()
{
    // Reuse the motivating-example program (4 structurally
    // equivalent types; 64 structurally co-optimal hierarchies).
    CorpusProgram program = echoparams_program();
    program.name = "echoparams";
    return program;
}

CorpusProgram
bench_gperf()
{
    // 10 types: a 7-member star with fully distinct behaviors (the
    // SLM resolves it) plus a clean 3-type tree.
    ProgramBuilder b("gperf");
    CompileOptions opts;
    star_family(b, "G", 6, opts, /*twin_mod=*/0);
    clean_tree(b, "T", 3);
    return finish(b, "gperf", opts);
}

CorpusProgram
bench_libctemplate()
{
    // 36 types: a split tree losing 9 children (0.25 missing), three
    // spliced pairs, a small distinct star, two clean trees.
    ProgramBuilder b("libctemplate");
    CompileOptions opts;
    split_tree(b, "S", 9, opts);
    spliced_pair(b, "Tmpl");
    spliced_pair(b, "Dict");
    spliced_pair(b, "Mod");
    star_family(b, "L", 3, opts, /*twin_mod=*/0);
    clean_tree(b, "T", 8);
    clean_tree(b, "U", 8);
    return finish(b, "libctemplate", opts);
}

CorpusProgram
bench_showtraf()
{
    // 25 types: clean trees, one split pair (0.04 missing), two
    // spliced pairs resolved behaviorally.
    ProgramBuilder b("ShowTraf");
    CompileOptions opts;
    clean_tree(b, "T", 7);
    clean_tree(b, "U", 6);
    clean_tree(b, "V", 4);
    clean_tree(b, "W", 2);
    split_tree(b, "S", 1, opts);
    spliced_pair(b, "Cap");
    spliced_pair(b, "Flt");
    return finish(b, "ShowTraf", opts);
}

CorpusProgram
bench_smoothing()
{
    // 31 types: two 10-member twin stars, a split tree losing 6
    // children (0.19 missing), and a clean 4-type tree.
    ProgramBuilder b("Smoothing");
    CompileOptions opts;
    star_family(b, "P", 9, opts, /*twin_mod=*/4);
    star_family(b, "Q", 9, opts, /*twin_mod=*/4);
    split_tree(b, "S", 6, opts);
    clean_tree(b, "T", 4);
    return finish(b, "Smoothing", opts);
}

CorpusProgram
bench_tdunittest()
{
    // 2 types: two unrelated equal-sized roots merged into one
    // family by a folded method. Without SLMs each is a possible
    // successor of the other (added 1.0); the single-root heuristic
    // plus ranking keeps one direction (added 0.5).
    ProgramBuilder b("td_unittest");
    CompileOptions opts;
    b.cls("Runner", {}, {"run_case", "report"}, {}, 1);
    b.noise_method("Runner", "noise_td", 120);
    b.motif("Runner", {"run_case", "report"});
    b.cls("Fixture", {}, {"setup", "teardown"}, {}, 1);
    b.noise_method("Fixture", "noise_td2", 120);
    b.motif("Fixture", {"setup", "setup", "teardown"});
    return finish(b, "td_unittest", opts);
}

CorpusProgram
bench_tinyserver()
{
    // 4 types: an echoparams-like star where one sibling's behavior
    // extends another's, so the SLM nests it under the sibling
    // (1 added over 4 = 0.25) while structure alone admits the full
    // 64 hierarchies (added 2.25).
    ProgramBuilder b("tinyserver");
    CompileOptions opts;
    std::string root = "Conn";
    b.cls(root, {}, {"open", "send", "close"}, {}, 1);
    b.motif(root, {"open", "send"});
    const char* names[3] = {"TcpConn", "UdpConn", "SslConn"};
    const int fields[3] = {1, 2, 1}; // SslConn mirrors TcpConn
    for (int i = 0; i < 3; ++i) {
        b.cls(names[i], {root}, {}, {"send", "close"}, fields[i]);
        opts.force_inline_parent_ctor.insert(names[i]);
    }
    b.motif("TcpConn", {"send", "close"});
    b.motif("UdpConn", {"close", "open", "close"});
    // SslConn behaves like TcpConn plus a handshake retry: its
    // closest model is TcpConn, not Conn.
    b.motif("SslConn", {"send", "close", "send", "close"});
    return finish(b, "tinyserver", opts);
}

} // namespace

std::vector<BenchmarkSpec>
table2_benchmarks()
{
    std::vector<BenchmarkSpec> specs;
    auto add = [&specs](CorpusProgram program, int types,
                        bool resolvable, PaperRow paper) {
        BenchmarkSpec spec;
        spec.name = program.name;
        spec.paper_types = types;
        spec.paper_resolvable = resolvable;
        spec.paper = paper;
        spec.program = std::move(program);
        specs.push_back(std::move(spec));
    };

    // Above the line: structural analysis suffices.
    add(bench_antispy(), 3, true, {0.0, 0.33, 0.0, 0.33});
    add(bench_bafprp(), 23, true, {0.3, 0.0, 0.3, 0.0});
    add(bench_cppcheck(), 6, true, {0.0, 0.0, 0.0, 0.0});
    add(bench_midilib(), 20, true, {0.0, 0.0, 0.0, 0.0});
    add(bench_patl(), 4, true, {0.0, 0.0, 0.0, 0.0});
    add(bench_pop3(), 2, true, {0.0, 0.0, 0.0, 0.0});
    add(bench_smtp(), 2, true, {0.0, 0.0, 0.0, 0.0});
    add(bench_tinyxml(), 9, true, {0.89, 0.0, 0.89, 0.0});
    add(bench_tinyxmlstl(), 15, true, {0.6, 0.27, 0.6, 0.27});
    add(bench_yafe(), 15, true, {0.0, 0.2, 0.0, 0.2});

    // Below the line: behavioral ranking needed.
    add(bench_analyzer(), 24, false, {0.21, 6.79, 0.25, 1.38});
    add(bench_cgridlistctrlex(), 28, false, {0.0, 0.46, 0.07, 0.07});
    add(bench_echoparams(), 4, false, {0.0, 2.25, 0.0, 0.0});
    add(bench_gperf(), 10, false, {0.0, 3.8, 0.0, 0.5});
    add(bench_libctemplate(), 36, false, {0.25, 0.33, 0.25, 0.11});
    add(bench_showtraf(), 25, false, {0.04, 0.4, 0.04, 0.08});
    add(bench_smoothing(), 31, false, {0.19, 7.9, 0.23, 1.1});
    add(bench_tdunittest(), 2, false, {0.0, 1.0, 0.0, 0.5});
    add(bench_tinyserver(), 4, false, {0.0, 2.25, 0.0, 0.25});
    return specs;
}

BenchmarkSpec
benchmark_by_name(const std::string& name)
{
    for (auto& spec : table2_benchmarks()) {
        if (spec.name == name)
            return spec;
    }
    support::fatal("unknown benchmark '" + name + "'");
}

} // namespace rock::corpus

#include "corpus/builder.h"

#include "support/error.h"

namespace rock::corpus {

using toyc::ClassDecl;
using toyc::MethodDecl;
using toyc::Stmt;
using toyc::UsageFunc;

void
distinct_tag(std::vector<Stmt>& body, int id, int field)
{
    body.push_back(Stmt::write_field("this", field));
    int bits = id + 1;
    while (bits > 0) {
        if (bits & 1)
            body.push_back(Stmt::read_field("this", field));
        else
            body.push_back(Stmt::write_field("this", field));
        bits >>= 1;
    }
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name = std::move(name);
}

ClassDecl&
ProgramBuilder::find(const std::string& name)
{
    for (auto& cls : prog_.classes) {
        if (cls.name == name)
            return cls;
    }
    support::fatal("builder: unknown class '" + name + "'");
}

ProgramBuilder&
ProgramBuilder::cls(const std::string& name,
                    std::vector<std::string> parents,
                    std::vector<std::string> new_methods,
                    std::vector<std::string> overrides,
                    int num_fields)
{
    ClassDecl decl;
    decl.name = name;
    decl.parents = std::move(parents);
    decl.num_fields = num_fields;

    // The tag field: this class's own last field (a distinct byte
    // offset from any sibling with a different size), falling back to
    // the first inherited field. Tagging anchors method bodies to a
    // per-class location so (a) unrelated methods never fold together
    // by accident -- identical-COMDAT noise, the paper's error source
    // 1, is injected explicitly via method_body() where a benchmark
    // wants it -- and (b) sibling types stay behaviorally separable.
    int inherited_fields = 0;
    {
        auto count_fields = [this](auto&& self,
                                   const std::string& cls) -> int {
            const toyc::ClassDecl* d = prog_.find_class(cls);
            ROCK_ASSERT(d != nullptr, "unknown parent class");
            int total = d->num_fields;
            for (const auto& p : d->parents)
                total += self(self, p);
            return total;
        };
        for (const auto& p : decl.parents)
            inherited_fields += count_fields(count_fields, p);
    }
    int tag_field = num_fields > 0 ? inherited_fields + num_fields - 1
                                   : 0;

    for (auto& m : new_methods) {
        MethodDecl method;
        method.name = std::move(m);
        distinct_tag(method.body, tag_count_++, tag_field);
        decl.methods.push_back(std::move(method));
    }
    for (auto& m : overrides) {
        MethodDecl method;
        method.name = std::move(m);
        distinct_tag(method.body, tag_count_++, tag_field);
        decl.methods.push_back(std::move(method));
    }
    prog_.classes.push_back(std::move(decl));
    return *this;
}

ProgramBuilder&
ProgramBuilder::pure(const std::string& name, const std::string& method)
{
    for (auto& m : find(name).methods) {
        if (m.name == method) {
            m.pure = true;
            m.body.clear();
            return *this;
        }
    }
    support::fatal("builder: class '" + name + "' has no method '" +
                   method + "'");
}

ProgramBuilder&
ProgramBuilder::method_body(const std::string& cls,
                            const std::string& method,
                            std::vector<Stmt> body)
{
    for (auto& m : find(cls).methods) {
        if (m.name == method) {
            for (auto& stmt : body)
                m.body.push_back(std::move(stmt));
            return *this;
        }
    }
    support::fatal("builder: class '" + cls + "' has no method '" +
                   method + "'");
}

ProgramBuilder&
ProgramBuilder::ctor_body(const std::string& cls, std::vector<Stmt> body)
{
    auto& decl = find(cls);
    for (auto& stmt : body)
        decl.ctor_body.push_back(std::move(stmt));
    return *this;
}

ProgramBuilder&
ProgramBuilder::motif(const std::string& cls,
                      std::vector<std::string> methods)
{
    find(cls); // existence check
    motifs_.emplace_back(cls, std::move(methods));
    return *this;
}

std::vector<std::string>
ProgramBuilder::full_behavior(const std::string& cls) const
{
    // Collect the ancestor chain (single-inheritance primary chain),
    // root first.
    std::vector<std::string> chain;
    std::string cur = cls;
    while (true) {
        chain.insert(chain.begin(), cur);
        const toyc::ClassDecl* decl = prog_.find_class(cur);
        ROCK_ASSERT(decl != nullptr, "unknown class in behavior chain");
        if (decl->parents.empty())
            break;
        cur = decl->parents.front();
    }
    std::vector<std::string> behavior;
    for (const auto& ancestor : chain) {
        for (const auto& [owner, methods] : motifs_) {
            if (owner == ancestor) {
                behavior.insert(behavior.end(), methods.begin(),
                                methods.end());
            }
        }
    }
    return behavior;
}

ProgramBuilder&
ProgramBuilder::add_scenario(const std::string& cls,
                             std::vector<Stmt> extra,
                             const std::string& suffix)
{
    UsageFunc fn;
    fn.name = "use_" + cls + suffix +
              (suffix.empty()
                   ? "_" + std::to_string(scenario_count_++)
                   : "");
    fn.body.push_back(Stmt::new_object("obj", cls));
    for (const auto& method : full_behavior(cls))
        fn.body.push_back(Stmt::virt_call("obj", method));
    for (auto& stmt : extra)
        fn.body.push_back(std::move(stmt));
    prog_.usages.push_back(std::move(fn));
    return *this;
}

ProgramBuilder&
ProgramBuilder::usage(UsageFunc fn)
{
    prog_.usages.push_back(std::move(fn));
    return *this;
}

ProgramBuilder&
ProgramBuilder::standard_scenarios(int per_class)
{
    for (const auto& cls : prog_.classes) {
        bool is_abstract = false;
        for (const auto& m : cls.methods) {
            if (m.pure)
                is_abstract = true;
        }
        if (is_abstract)
            continue;
        std::vector<std::string> behavior = full_behavior(cls.name);
        if (behavior.empty())
            continue;
        for (int k = 0; k < per_class; ++k) {
            UsageFunc fn;
            fn.name = "use_" + cls.name + "_v" + std::to_string(k);
            fn.body.push_back(Stmt::new_object("obj", cls.name));
            for (const auto& method : behavior)
                fn.body.push_back(Stmt::virt_call("obj", method));
            for (int extra = 0; extra < k; ++extra) {
                fn.body.push_back(
                    Stmt::virt_call("obj", behavior.back()));
            }
            prog_.usages.push_back(std::move(fn));
        }
    }
    return *this;
}

ProgramBuilder&
ProgramBuilder::noise_method(const std::string& cls,
                             const std::string& method, int noise_id)
{
    MethodDecl decl;
    decl.name = method;
    // Starts with a read so a noise body can never coincide with a
    // distinct_tag body (which always starts with a write).
    decl.body.push_back(Stmt::read_field("this", 0));
    int bits = noise_id + 1;
    while (bits > 0) {
        if (bits & 1)
            decl.body.push_back(Stmt::read_field("this", 0));
        else
            decl.body.push_back(Stmt::write_field("this", 0));
        bits >>= 1;
    }
    find(cls).methods.push_back(std::move(decl));
    return *this;
}

toyc::Program
ProgramBuilder::build()
{
    return prog_;
}

} // namespace rock::corpus

#include "corpus/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace rock::corpus {

using support::Rng;
using toyc::ClassDecl;
using toyc::MethodDecl;
using toyc::Program;
using toyc::Stmt;
using toyc::UsageFunc;

namespace {

/** Book-keeping for one generated class. */
struct GenClass {
    int index = 0;
    int parent = -1; ///< primary base, -1 for roots
    int mi_parent = -1; ///< secondary base (multiple inheritance)
    int tree = 0;    ///< root this class descends from
    int depth = 0;
    int children = 0;
    std::vector<std::string> methods; ///< all callable methods
    std::vector<std::string> motif;   ///< own behavioral motif
};

/**
 * Append a body that is unique to (class @p cls, method @p m): the
 * integer id is encoded as a read/write pattern, so no two generated
 * method bodies are byte-identical unless noise injection makes them
 * so.
 */
void
distinct_tag(std::vector<Stmt>& body, int id)
{
    body.push_back(Stmt::write_field("this", 0));
    int bits = id + 1;
    while (bits > 0) {
        if (bits & 1)
            body.push_back(Stmt::read_field("this", 0));
        else
            body.push_back(Stmt::write_field("this", 0));
        bits >>= 1;
    }
}

} // namespace

Program
generate_program(const GeneratorSpec& spec)
{
    support::check(spec.num_classes >= spec.num_trees,
                   "num_classes must cover the requested trees");
    support::check(spec.num_trees >= 1, "need at least one tree");
    Rng rng(spec.seed);
    Program prog;
    prog.name = "generated_" + std::to_string(spec.seed);

    std::vector<GenClass> gens;
    int method_counter = spec.name_base;
    int tag_counter = spec.name_base;

    auto class_name = [&spec](int idx) {
        return spec.class_prefix + std::to_string(idx);
    };

    // ---- hierarchy shape -------------------------------------------------
    for (int i = 0; i < spec.num_classes; ++i) {
        GenClass gen;
        gen.index = i;
        if (i >= spec.num_trees) {
            // Attach to a random eligible existing class.
            std::vector<int> eligible;
            for (const auto& other : gens) {
                if (other.depth < spec.max_depth &&
                    other.children < spec.max_children) {
                    eligible.push_back(other.index);
                }
            }
            if (eligible.empty())
                eligible.push_back(static_cast<int>(rng.index(gens.size())));
            gen.parent = eligible[rng.index(eligible.size())];
            gen.depth = gens[static_cast<std::size_t>(gen.parent)].depth + 1;
            gen.tree = gens[static_cast<std::size_t>(gen.parent)].tree;
            gens[static_cast<std::size_t>(gen.parent)].children += 1;
            // Multiple inheritance: add a base from another tree
            // (never the same tree, so no diamond/cycle can form).
            if (rng.chance(spec.mi_prob)) {
                std::vector<int> others;
                for (const auto& other : gens) {
                    if (other.tree != gen.tree)
                        others.push_back(other.index);
                }
                if (!others.empty())
                    gen.mi_parent = others[rng.index(others.size())];
            }
        } else {
            gen.tree = i;
        }
        gens.push_back(gen);
    }

    // ---- class declarations ----------------------------------------------
    for (auto& gen : gens) {
        ClassDecl decl;
        decl.name = class_name(gen.index);
        decl.num_fields = 1 + static_cast<int>(rng.index(2));

        std::vector<std::string> inherited;
        if (gen.parent >= 0) {
            decl.parents.push_back(class_name(gen.parent));
            inherited = gens[static_cast<std::size_t>(gen.parent)].methods;
        }
        if (gen.mi_parent >= 0) {
            decl.parents.push_back(class_name(gen.mi_parent));
            const auto& extra =
                gens[static_cast<std::size_t>(gen.mi_parent)].methods;
            inherited.insert(inherited.end(), extra.begin(),
                             extra.end());
        }
        gen.methods = inherited;

        auto add_method = [&](const std::string& name, bool fresh) {
            MethodDecl method;
            method.name = name;
            distinct_tag(method.body, tag_counter++);
            // Occasionally call an inherited method on `this`.
            if (!inherited.empty() && rng.chance(0.3)) {
                method.body.push_back(Stmt::virt_call(
                    "this", inherited[rng.index(inherited.size())]));
            }
            decl.methods.push_back(std::move(method));
            if (fresh)
                gen.methods.push_back(name);
        };

        if (gen.parent < 0) {
            for (int m = 0; m < spec.root_methods; ++m)
                add_method("m" + std::to_string(method_counter++), true);
        } else {
            // Never override *all* inherited methods: a shared entry
            // must survive as the family fingerprint (Section 5.1).
            if (inherited.size() > 1 && rng.chance(spec.override_prob)) {
                add_method(inherited[rng.index(inherited.size() - 1) + 1],
                           false);
            }
            if (rng.chance(spec.new_method_prob))
                add_method("m" + std::to_string(method_counter++), true);
        }

        // Own motif: 1-3 calls biased toward this class's additions.
        std::size_t motif_len = 1 + rng.index(3);
        for (std::size_t k = 0; k < motif_len; ++k) {
            const auto& pool = gen.methods;
            ROCK_ASSERT(!pool.empty(), "class without methods");
            // Bias: prefer the newest methods.
            std::size_t pick =
                rng.chance(0.6) && pool.size() > inherited.size()
                    ? inherited.size() +
                          rng.index(pool.size() - inherited.size())
                    : rng.index(pool.size());
            gen.motif.push_back(pool[pick]);
        }
        prog.classes.push_back(std::move(decl));
    }

    // ---- fold-noise injection --------------------------------------------
    // Give `fold_noise_pairs` random cross-tree class pairs one extra
    // byte-identical method each; after identical-function folding the
    // two vtables share a pointer and the families merge.
    for (int p = 0; p < spec.fold_noise_pairs; ++p) {
        int a = static_cast<int>(rng.index(gens.size()));
        int b = static_cast<int>(rng.index(gens.size()));
        if (a == b)
            continue;
        std::string name = "shim" + std::to_string(spec.name_base + p);
        for (int idx : {a, b}) {
            MethodDecl method;
            method.name = name;
            method.body.push_back(Stmt::write_field("this", 0));
            prog.classes[static_cast<std::size_t>(idx)].methods.push_back(
                std::move(method));
            gens[static_cast<std::size_t>(idx)].methods.push_back(name);
        }
    }

    // ---- scenarios ---------------------------------------------------------
    for (const auto& gen : gens) {
        // Behavior = ancestor motifs root-first, then own.
        std::vector<std::string> behavior;
        {
            std::vector<int> chain;
            for (int cur = gen.index; cur >= 0;
                 cur = gens[static_cast<std::size_t>(cur)].parent) {
                chain.insert(chain.begin(), cur);
            }
            for (int cur : chain) {
                const auto& motif =
                    gens[static_cast<std::size_t>(cur)].motif;
                behavior.insert(behavior.end(), motif.begin(),
                                motif.end());
            }
        }
        for (int s = 0; s < spec.scenarios_per_class; ++s) {
            UsageFunc fn;
            fn.name = "use_" + class_name(gen.index) + "_" +
                      std::to_string(s);
            fn.body.push_back(
                Stmt::new_object("obj", class_name(gen.index)));
            for (const auto& method : behavior)
                fn.body.push_back(Stmt::virt_call("obj", method));
            // Scenario-specific variation.
            for (std::size_t extra = rng.index(3); extra > 0; --extra) {
                fn.body.push_back(Stmt::virt_call(
                    "obj", gen.methods[rng.index(gen.methods.size())]));
            }
            if (spec.control_flow && rng.chance(0.4)) {
                std::vector<Stmt> then_body{Stmt::virt_call(
                    "obj", gen.methods[rng.index(gen.methods.size())])};
                std::vector<Stmt> else_body{
                    Stmt::read_field("obj", 0)};
                fn.body.push_back(Stmt::branch(std::move(then_body),
                                               std::move(else_body)));
            }
            if (spec.control_flow && rng.chance(0.25)) {
                std::vector<Stmt> loop_body{Stmt::virt_call(
                    "obj", gen.methods[rng.index(gen.methods.size())])};
                fn.body.push_back(Stmt::loop(std::move(loop_body)));
            }
            prog.usages.push_back(std::move(fn));
        }
    }

    // The first declared usage becomes BinaryImage::entry; rotating
    // lets specs pick an entry anywhere in the function table.
    if (spec.entry_usage > 0 && !prog.usages.empty()) {
        auto pivot = static_cast<long>(
            static_cast<std::size_t>(spec.entry_usage) %
            prog.usages.size());
        std::rotate(prog.usages.begin(), prog.usages.begin() + pivot,
                    prog.usages.end());
    }

    return prog;
}

} // namespace rock::corpus

#include "typeinf/constraints.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cache/artifact_cache.h"
#include "cfg/analyses.h"
#include "support/error.h"
#include "support/str.h"

namespace rock::typeinf {

namespace {

using bir::Instr;
using bir::Op;

/** What the linear scan knows about one register. */
struct RegState {
    enum Kind : std::uint8_t {
        Unknown, ///< nothing object-like
        VtConst, ///< a vtable address materialized by MovImm
        Obj,     ///< pointer to object `var` at byte `offset`
        PtrLoad, ///< word loaded from an object (potential vptr)
        SlotFn,  ///< word loaded from a PtrLoad (potential method ptr)
    };
    Kind kind = Unknown;
    int var = -1;
    std::int32_t offset = 0;
    std::uint32_t value = 0;
    int slot = -1;
    /** PtrLoad: slot index of the producing Load (field-vs-vptr
     *  classification happens when/if a second Load consumes it). */
    int site = -1;
};

/** One function's scan output, with function-local variable ids. */
struct Batch {
    std::vector<Constraint> constraints;
    int num_vars = 0;
    int this_var = -1;
};

/** A candidate field read: a Load off an object pointer that no
 *  dispatch chain reclassified as a vptr load. */
struct LoadSite {
    int slot = -1;
    int var = -1;
    std::int32_t offset = 0;
    std::uint32_t addr = 0;
};

class FunctionScanner {
  public:
    FunctionScanner(const bir::BinaryImage& image, const cfg::Cfg& cfg,
                    const std::unordered_set<std::uint32_t>& vtables)
        : image_(image), cfg_(cfg), vtables_(vtables)
    {
    }

    Batch scan();

  private:
    void reset_all();
    void reset_pendings();
    int this_param_var();
    /** Reaching-defs fallback: Obj(this, 0) when every def of @p reg
     *  reaching @p slot is a GetArg-slot-0. */
    std::optional<RegState> recover_this(int slot, int reg);
    /** Constant-propagation fallback for a register the scan lost. */
    std::optional<std::uint32_t> const_value(int slot, int reg);
    Constraint base(ConstraintKind kind, std::uint32_t addr) const;
    void flush_direct_call(std::uint32_t callee, std::uint32_t addr);

    const bir::BinaryImage& image_;
    const cfg::Cfg& cfg_;
    const std::unordered_set<std::uint32_t>& vtables_;

    Batch batch_;
    RegState regs_[bir::kNumRegs];
    RegState pending_arg0_;
    bool pending_alloc_ = false;
    std::vector<LoadSite> load_sites_;
    std::vector<bool> site_is_vptr_;
    std::optional<cfg::ConstProp> constprop_;
    std::optional<cfg::ReachingDefs> reaching_;
};

void
FunctionScanner::reset_all()
{
    for (auto& reg : regs_)
        reg = RegState{};
    reset_pendings();
}

void
FunctionScanner::reset_pendings()
{
    pending_arg0_ = RegState{};
    pending_alloc_ = false;
}

int
FunctionScanner::this_param_var()
{
    if (batch_.this_var < 0)
        batch_.this_var = batch_.num_vars++;
    return batch_.this_var;
}

std::optional<RegState>
FunctionScanner::recover_this(int slot, int reg)
{
    if (!reaching_)
        reaching_ = cfg::reaching_definitions(cfg_);
    std::set<int> defs = reaching_->reaching(cfg_, slot, reg);
    if (defs.empty())
        return std::nullopt;
    for (int def : defs) {
        if (def == cfg::kUninitDef)
            return std::nullopt;
        const auto& instr =
            cfg_.slots[static_cast<std::size_t>(def)].instr;
        if (!instr || instr->op != Op::GetArg || instr->b != 0)
            return std::nullopt;
    }
    RegState state;
    state.kind = RegState::Obj;
    state.var = this_param_var();
    state.offset = 0;
    return state;
}

std::optional<std::uint32_t>
FunctionScanner::const_value(int slot, int reg)
{
    if (!constprop_)
        constprop_ = cfg::constant_propagation(cfg_);
    cfg::ConstVal val = constprop_->value_at(cfg_, slot, reg);
    if (val.kind == cfg::ConstVal::Const)
        return val.value;
    return std::nullopt;
}

Constraint
FunctionScanner::base(ConstraintKind kind, std::uint32_t addr) const
{
    Constraint c;
    c.kind = kind;
    c.func_addr = cfg_.func.addr;
    c.addr = addr;
    return c;
}

void
FunctionScanner::flush_direct_call(std::uint32_t callee,
                                   std::uint32_t addr)
{
    if (pending_arg0_.kind == RegState::Obj &&
        image_.function_at(callee) != nullptr) {
        Constraint c = base(ConstraintKind::ThisArg, addr);
        c.var = pending_arg0_.var;
        c.offset = pending_arg0_.offset;
        c.callee = callee;
        batch_.constraints.push_back(c);
    }
    reset_pendings();
}

Batch
FunctionScanner::scan()
{
    reset_all();
    const int slots = static_cast<int>(cfg_.slots.size());
    for (int s = 0; s < slots; ++s) {
        const cfg::Slot& slot = cfg_.slots[static_cast<std::size_t>(s)];
        // Calls and argument slots do not survive a control-flow
        // join: the flow-insensitive scan drops them at block
        // leaders, keeping the dispatch/ctor idioms (always
        // straight-line) while never pairing a SetArg with a Call in
        // a different block.
        if (s > 0 && cfg_.slot_block[static_cast<std::size_t>(s)] !=
                         cfg_.slot_block[static_cast<std::size_t>(s - 1)])
            reset_pendings();
        if (!slot.instr) {
            reset_all(); // corrupted slot: trust nothing downstream
            continue;
        }
        const Instr& in = *slot.instr;
        switch (in.op) {
          case Op::MovImm: {
            RegState state;
            if (vtables_.count(in.imm)) {
                state.kind = RegState::VtConst;
                state.value = in.imm;
            }
            regs_[in.a] = state;
            break;
          }
          case Op::MovReg:
            regs_[in.a] = regs_[in.b];
            break;
          case Op::AddImm: {
            RegState state = regs_[in.b];
            if (state.kind == RegState::Obj)
                state.offset += static_cast<std::int32_t>(in.imm);
            else
                state = RegState{};
            regs_[in.a] = state;
            break;
          }
          case Op::Load: {
            RegState src = regs_[in.b];
            if (src.kind == RegState::Unknown) {
                if (auto rec = recover_this(s, in.b))
                    src = *rec;
            }
            RegState out;
            if (src.kind == RegState::Obj) {
                out.kind = RegState::PtrLoad;
                out.var = src.var;
                out.offset =
                    src.offset + static_cast<std::int32_t>(in.imm);
                out.site = static_cast<int>(load_sites_.size());
                load_sites_.push_back({s, out.var, out.offset,
                                       slot.addr});
                site_is_vptr_.push_back(false);
            } else if (src.kind == RegState::PtrLoad) {
                // Second load of the dispatch idiom: the first load
                // was a vptr read, this one fetches a method pointer.
                out.kind = RegState::SlotFn;
                out.var = src.var;
                out.offset = src.offset;
                out.slot = static_cast<int>(in.imm / bir::kWordSize);
                if (src.site >= 0)
                    site_is_vptr_[static_cast<std::size_t>(src.site)] =
                        true;
            }
            regs_[in.a] = out;
            break;
          }
          case Op::Store: {
            RegState dst = regs_[in.a];
            if (dst.kind == RegState::Unknown) {
                if (auto rec = recover_this(s, in.a))
                    dst = *rec;
            }
            if (dst.kind != RegState::Obj)
                break;
            std::int32_t off =
                dst.offset + static_cast<std::int32_t>(in.imm);
            RegState val = regs_[in.b];
            std::optional<std::uint32_t> stored;
            if (val.kind == RegState::VtConst)
                stored = val.value;
            else if (val.kind == RegState::Unknown) {
                // Constant propagation sees through paths the linear
                // scan lost (e.g. a join of two MovImms).
                if (auto cv = const_value(s, in.b);
                    cv && vtables_.count(*cv))
                    stored = *cv;
            }
            if (stored) {
                Constraint c =
                    base(ConstraintKind::VptrStore, slot.addr);
                c.var = dst.var;
                c.offset = off;
                c.vtable = *stored;
                batch_.constraints.push_back(c);
            } else {
                Constraint c =
                    base(ConstraintKind::FieldAccess, slot.addr);
                c.var = dst.var;
                c.offset = off;
                c.is_store = true;
                batch_.constraints.push_back(c);
            }
            break;
          }
          case Op::SetArg:
            if (in.a == 0)
                pending_arg0_ = regs_[in.b];
            break;
          case Op::GetArg: {
            RegState state;
            if (in.b == 0) {
                state.kind = RegState::Obj;
                state.var = this_param_var();
                state.offset = 0;
            }
            regs_[in.a] = state;
            break;
          }
          case Op::Call:
            if (in.imm == bir::kAllocStub) {
                reset_pendings();
                pending_alloc_ = true;
            } else {
                flush_direct_call(in.imm, slot.addr);
            }
            break;
          case Op::CallInd: {
            RegState target = regs_[in.a];
            if (target.kind == RegState::SlotFn) {
                Constraint c =
                    base(ConstraintKind::MethodSlot, slot.addr);
                c.var = target.var;
                c.offset = target.offset;
                c.slot = target.slot;
                batch_.constraints.push_back(c);
                reset_pendings();
            } else if (auto cv = const_value(s, in.a)) {
                // A provably-constant indirect call is a direct call
                // in disguise (constprop fact, verifier-checked).
                flush_direct_call(*cv, slot.addr);
            } else {
                reset_pendings();
            }
            break;
          }
          case Op::GetRet: {
            RegState state;
            if (pending_alloc_) {
                state.kind = RegState::Obj;
                state.var = batch_.num_vars++;
                state.offset = 0;
                pending_alloc_ = false;
            }
            regs_[in.a] = state;
            break;
          }
          case Op::Nop:
          case Op::RetVal:
          case Op::Ret:
          case Op::Jmp:
          case Op::Jnz:
          case Op::Jz:
            break;
        }
    }

    // Loads never consumed by a dispatch chain are field reads.
    for (std::size_t i = 0; i < load_sites_.size(); ++i) {
        if (site_is_vptr_[i])
            continue;
        const LoadSite& site = load_sites_[i];
        Constraint c = base(ConstraintKind::FieldAccess, site.addr);
        c.var = site.var;
        c.offset = site.offset;
        batch_.constraints.push_back(c);
    }
    std::stable_sort(batch_.constraints.begin(),
                     batch_.constraints.end(),
                     [](const Constraint& a, const Constraint& b) {
                         return a.addr < b.addr;
                     });
    return batch_;
}

// ---- "typeinf" artifact codec -----------------------------------------
// Payload: one representative body's Batch, before the per-alias
// variable/address rebase (the rebase is pure arithmetic, so caching
// the batch reproduces the merged ConstraintSet bit for bit).

void
encode_batch(const Batch& batch, cache::ByteWriter& w)
{
    w.i32(batch.num_vars);
    w.i32(batch.this_var);
    w.u32(static_cast<std::uint32_t>(batch.constraints.size()));
    for (const Constraint& c : batch.constraints) {
        w.u8(static_cast<std::uint8_t>(c.kind));
        w.i32(c.var);
        w.i32(c.offset);
        w.u32(c.vtable);
        w.i32(c.slot);
        w.u32(c.callee);
        w.u8(c.is_store ? 1 : 0);
        w.u32(c.func_addr);
        w.u32(c.addr);
    }
}

bool
decode_batch(const std::vector<std::uint8_t>& blob, Batch& batch)
{
    cache::ByteReader r(blob);
    batch = Batch{};
    batch.num_vars = r.i32();
    batch.this_var = r.i32();
    std::uint32_t n = r.u32();
    if (!r.ok() || n > r.remaining())
        return false;
    batch.constraints.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Constraint& c = batch.constraints[i];
        std::uint8_t kind = r.u8();
        if (kind >
            static_cast<std::uint8_t>(ConstraintKind::FieldAccess))
            return false;
        c.kind = static_cast<ConstraintKind>(kind);
        c.var = r.i32();
        c.offset = r.i32();
        c.vtable = r.u32();
        c.slot = r.i32();
        c.callee = r.u32();
        c.is_store = r.u8() != 0;
        c.func_addr = r.u32();
        c.addr = r.u32();
    }
    return r.at_end();
}

} // namespace

const char*
constraint_name(ConstraintKind kind)
{
    switch (kind) {
      case ConstraintKind::VptrStore: return "vptr-store";
      case ConstraintKind::MethodSlot: return "method-slot";
      case ConstraintKind::ThisArg: return "this-arg";
      case ConstraintKind::FieldAccess: return "field-access";
    }
    return "?";
}

std::string
to_string(const Constraint& c)
{
    using support::format;
    using support::hex;
    std::string head = format("%s: [%s] ", hex(c.addr).c_str(),
                              constraint_name(c.kind));
    switch (c.kind) {
      case ConstraintKind::VptrStore:
        return head + format("v%d+%d <- vt %s", c.var, c.offset,
                             hex(c.vtable).c_str());
      case ConstraintKind::MethodSlot:
        return head +
               format("v%d+%d dispatches slot %d", c.var, c.offset,
                      c.slot);
      case ConstraintKind::ThisArg:
        return head + format("v%d+%d passed as this to %s", c.var,
                             c.offset, hex(c.callee).c_str());
      case ConstraintKind::FieldAccess:
        return head + format("v%d %s field at %d", c.var,
                             c.is_store ? "writes" : "reads",
                             c.offset);
    }
    return head + "?";
}

ConstraintSet
generate_constraints(const bir::BinaryImage& image,
                     const cfg::CfgCache& cache,
                     const std::vector<analysis::VTableInfo>& vtables,
                     support::ThreadPool& pool)
{
    return generate_constraints(image, cache, vtables, pool, nullptr);
}

ConstraintSet
generate_constraints(const bir::BinaryImage& image,
                     const cfg::CfgCache& cache,
                     const std::vector<analysis::VTableInfo>& vtables,
                     support::ThreadPool& pool,
                     const std::shared_ptr<cache::ArtifactCache>&
                         artifacts)
{
    ROCK_ASSERT(cache.built(), "CfgCache must be built before "
                               "constraint generation");
    const std::size_t n = cache.size();
    std::unordered_set<std::uint32_t> vtable_addrs;
    for (const auto& vt : vtables)
        vtable_addrs.insert(vt.addr);

    // One scan per unique body: group function-table entries by
    // content hash, scan each group's representative, then replicate
    // the batch to every alias with its addresses rebased.
    std::unordered_map<std::uint64_t, std::size_t> rep_of_hash;
    std::vector<std::size_t> group_rep; // representative fn index
    std::vector<std::size_t> rep_index(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        auto [it, inserted] =
            rep_of_hash.try_emplace(cache.content_hash(i),
                                    group_rep.size());
        if (inserted)
            group_rep.push_back(i);
        rep_index[i] = it->second;
    }

    // Memoization fingerprint: the scan reads the rep's CFG, the
    // vtable address set and the function table (direct-call targets
    // are checked against it), all covered by the image digest +
    // vtable fold below. Worker count deliberately excluded.
    cache::ArtifactCache* store = artifacts.get();
    std::uint64_t fp = 0;
    if (store) {
        fp = cache::mix(cache::kFnvSeed, cache::kSchemaVersion);
        fp = cache::mix(fp, cfg::image_digest(image));
        fp = cache::mix(fp, vtable_addrs.size());
        for (const auto& vt : vtables)
            fp = cache::mix(fp, vt.addr);
    }

    std::vector<Batch> rep_batches(group_rep.size());
    std::vector<std::uint64_t> group_costs(group_rep.size(), 1);
    for (std::size_t g = 0; g < group_rep.size(); ++g)
        group_costs[g] = cache.costs()[group_rep[g]];
    support::ChunkPlan plan;
    plan.costs = group_costs.data();
    pool.parallel_for(group_rep.size(), plan, [&](std::size_t g) {
        if (store) {
            std::uint64_t content = cache::mix(
                cache::kFnvSeed, cache.content_hash(group_rep[g]));
            content = cache::mix(content,
                                 image.functions[group_rep[g]].addr);
            cache::ArtifactKey key{"typeinf", content, fp};
            std::vector<std::uint8_t> blob;
            if (store->get(key, blob) &&
                decode_batch(blob, rep_batches[g]))
                return;
            FunctionScanner scanner(image, cache.at(group_rep[g]),
                                    vtable_addrs);
            rep_batches[g] = scanner.scan();
            cache::ByteWriter w;
            encode_batch(rep_batches[g], w);
            store->put(key, w.take());
            return;
        }
        FunctionScanner scanner(image, cache.at(group_rep[g]),
                                vtable_addrs);
        rep_batches[g] = scanner.scan();
    });

    // Merge in function-table order: every alias gets its own block
    // of variable ids (byte-identical bodies do not share objects)
    // and its own provenance addresses.
    ConstraintSet out;
    out.this_vars.assign(n, -1);
    out.unique_bodies = group_rep.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Batch& batch = rep_batches[rep_index[i]];
        const bir::FunctionEntry& fn = image.functions[i];
        const bir::FunctionEntry& rep_fn =
            image.functions[group_rep[rep_index[i]]];
        const int var_base = out.num_vars;
        if (batch.this_var >= 0)
            out.this_vars[i] = var_base + batch.this_var;
        for (Constraint c : batch.constraints) {
            c.var += var_base;
            c.func_addr = fn.addr;
            c.addr = fn.addr + (c.addr - rep_fn.addr);
            out.constraints.push_back(c);
        }
        out.num_vars += batch.num_vars;
    }
    return out;
}

} // namespace rock::typeinf

/**
 * @file
 * Constraint generation for the structural-subtyping pass.
 *
 * A flow-insensitive, BinSub-flavored constraint generator over VM32:
 * one linear pass per unique function body tracks which registers
 * hold object pointers (abstract object variables), at which offsets,
 * and emits four constraint forms (the grammar of
 * docs/TYPE_INFERENCE.md):
 *
 *   VptrStore   v.off <- VT_k         a vtable constant stored through
 *                                     an object pointer
 *   MethodSlot  v.off has slot i      an indirect call through the
 *                                     two-load dispatch idiom
 *   ThisArg     v.off ~this~> F       an object (sub)pointer passed as
 *                                     argument slot 0 of a direct call
 *   FieldAccess v has field at off    an object load/store that is not
 *                                     part of the vptr idiom
 *
 * Object variables come from exactly two sources -- the incoming
 * `this` argument (GetArg slot 0) and allocation-stub results (GetRet
 * after Call kAllocStub) -- and propagate through MovReg/AddImm.
 * Where the linear scan loses track (control-flow joins), the
 * existing dataflow facts take over: reaching definitions recover
 * `this`-derived pointers (every reaching def is a GetArg-0 site) and
 * constant propagation recovers vtable constants and indirect-call
 * targets the scan did not see directly.
 *
 * Every constraint carries its originating function and instruction
 * address, so any solved fact can be explained back to the evidence
 * (`rockdump --constraints`).
 *
 * Bodies are walked once per unique body (cfg::CfgCache content
 * hash): byte-identical bodies produce identical constraints modulo
 * the address rebase, so COMDAT-style duplicates cost one scan.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/vtable_scan.h"
#include "bir/image.h"
#include "cfg/cfg_cache.h"
#include "support/parallel.h"

namespace rock::cache {
class ArtifactCache;
}

namespace rock::typeinf {

/** The four constraint forms. */
enum class ConstraintKind : std::uint8_t {
    VptrStore,
    MethodSlot,
    ThisArg,
    FieldAccess,
};

/** Stable kebab-case name of @p kind ("vptr-store", ...). */
const char* constraint_name(ConstraintKind kind);

/** One generated constraint. Fields beyond (kind, var, offset) are
 *  populated per kind; unused ones stay zero. */
struct Constraint {
    ConstraintKind kind = ConstraintKind::VptrStore;
    /** Abstract object variable (image-wide dense id). */
    int var = -1;
    /** Byte offset into the object the constraint is about. */
    std::int32_t offset = 0;
    /** VptrStore: the stored vtable's address. */
    std::uint32_t vtable = 0;
    /** MethodSlot: dispatched vtable slot index. */
    int slot = -1;
    /** ThisArg: direct-call target receiving the pointer as arg 0. */
    std::uint32_t callee = 0;
    /** FieldAccess: true for stores, false for loads. */
    bool is_store = false;

    /** Provenance: enclosing function entry + instruction address. */
    std::uint32_t func_addr = 0;
    std::uint32_t addr = 0;

    bool operator==(const Constraint&) const = default;
};

/** "0x1040: [vptr-store] v3+0 <- vt 0x100040" etc. */
std::string to_string(const Constraint& constraint);

/** Everything the generator produced for one image. */
struct ConstraintSet {
    /** All constraints, in (function-table index, address) order. */
    std::vector<Constraint> constraints;
    /** Total abstract object variables allocated. */
    int num_vars = 0;
    /** this-param variable per function entry address, or -1:
     *  this_vars[i] belongs to image.functions[i]. */
    std::vector<int> this_vars;
    /** Unique bodies actually scanned (<= functions). */
    std::size_t unique_bodies = 0;
};

/**
 * Generate constraints for every function of @p image on @p pool
 * (chunked by body size, one scan per unique body, merged in
 * function-table order -- bit-identical for every pool size).
 *
 * @param vtables  discovered vtables; MovImm of one of these
 *                 addresses is what makes a store a VptrStore.
 *                 Requires @p cache to be built.
 */
ConstraintSet
generate_constraints(const bir::BinaryImage& image,
                     const cfg::CfgCache& cache,
                     const std::vector<analysis::VTableInfo>& vtables,
                     support::ThreadPool& pool);

/**
 * As above, memoizing each representative body's scan in
 * @p artifacts (kind "typeinf") when non-null. Keys cover the rep's
 * body hash + entry address; fingerprints cover the image digest and
 * the vtable address set, never the pool size -- warm results are
 * bit-identical across thread counts.
 */
ConstraintSet
generate_constraints(const bir::BinaryImage& image,
                     const cfg::CfgCache& cache,
                     const std::vector<analysis::VTableInfo>& vtables,
                     support::ThreadPool& pool,
                     const std::shared_ptr<cache::ArtifactCache>&
                         artifacts);

} // namespace rock::typeinf

#include "typeinf/solver.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "graph/order.h"
#include "graph/union_find.h"
#include "structural/structural.h"
#include "support/str.h"

namespace rock::typeinf {

namespace {

/** First-seen provenance of one piece of evidence. */
struct Prov {
    std::uint32_t func_addr = 0;
    std::uint32_t addr = 0;
};

int
type_index(const std::vector<std::uint32_t>& types, std::uint32_t addr)
{
    auto it = std::lower_bound(types.begin(), types.end(), addr);
    if (it != types.end() && *it == addr)
        return static_cast<int>(it - types.begin());
    return -1;
}

/**
 * The unique max-arity type of a store set, or -1 when two distinct
 * types tie for it. A tie is genuinely ambiguous evidence (a derived
 * type that adds no virtuals is arity-identical to its base), and
 * breaking it by address would make the solved facts depend on
 * declaration order -- the permute-stability the fuzz oracle pins.
 */
int
dominant_type(const std::map<int, Prov>& stored,
              const std::vector<const analysis::VTableInfo*>& info)
{
    int best = -1;
    std::size_t best_arity = 0;
    bool tied = false;
    for (const auto& [t, prov] : stored) {
        (void)prov;
        std::size_t arity = info[static_cast<std::size_t>(t)]->slots.size();
        if (best < 0 || arity > best_arity) {
            best = t;
            best_arity = arity;
            tied = false;
        } else if (arity == best_arity && t != best) {
            tied = true;
        }
    }
    return tied ? -1 : best;
}

} // namespace

const char*
inconsistency_name(InconsistencyKind kind)
{
    switch (kind) {
      case InconsistencyKind::SlotArity: return "slot-arity";
      case InconsistencyKind::FieldOverlap: return "field-overlap";
      case InconsistencyKind::CyclicDerives: return "cyclic-derives";
    }
    return "?";
}

std::string
to_string(const Inconsistency& inc)
{
    using support::format;
    using support::hex;
    std::string head =
        format("[%s] ", inconsistency_name(inc.kind));
    if (inc.vtable_a != 0)
        head += format("vt %s", hex(inc.vtable_a).c_str());
    if (inc.vtable_b != 0)
        head += format(" / vt %s", hex(inc.vtable_b).c_str());
    if (inc.vtable_a != 0 || inc.vtable_b != 0)
        head += ": ";
    return head + inc.detail;
}

SolveResult
solve(const ConstraintSet& constraints, const bir::BinaryImage& image,
      const std::vector<analysis::VTableInfo>& vtables)
{
    SolveResult result;

    std::vector<std::uint32_t> types;
    for (const auto& vt : vtables)
        types.push_back(vt.addr);
    std::sort(types.begin(), types.end());
    const int n_types = static_cast<int>(types.size());
    std::vector<const analysis::VTableInfo*> info(
        static_cast<std::size_t>(n_types));
    for (const auto& vt : vtables)
        info[static_cast<std::size_t>(type_index(types, vt.addr))] = &vt;
    auto arity = [&](int t) {
        return static_cast<int>(
            info[static_cast<std::size_t>(t)]->slots.size());
    };

    std::unordered_map<std::uint32_t, std::size_t> fn_index;
    for (std::size_t i = 0; i < image.functions.size(); ++i)
        fn_index.emplace(image.functions[i].addr, i);

    // ---- Phase 1a: per-variable primary binding ------------------------
    // The unique max-arity vtable stored at offset 0 is the object's
    // dynamic type: ctors store base vtables before their own, dtors
    // store their own before reverting to bases', and derived arity
    // is never below base arity, so max-arity is direction-proof.
    // An arity tie between distinct types is left unbound (see
    // dominant_type).
    const int n_vars = constraints.num_vars;
    std::vector<std::map<int, Prov>> var_stores0(
        static_cast<std::size_t>(n_vars));
    for (const Constraint& c : constraints.constraints) {
        if (c.kind != ConstraintKind::VptrStore || c.offset != 0)
            continue;
        int t = type_index(types, c.vtable);
        if (t < 0)
            continue;
        var_stores0[static_cast<std::size_t>(c.var)].try_emplace(
            t, Prov{c.func_addr, c.addr});
    }
    std::vector<int> var_binding(static_cast<std::size_t>(n_vars), -1);
    for (int v = 0; v < n_vars; ++v)
        var_binding[static_cast<std::size_t>(v)] =
            dominant_type(var_stores0[static_cast<std::size_t>(v)],
                          info);

    // A function is ctor/dtor-shaped when its own body types its
    // `this` parameter (stores a vtable through it at offset 0).
    std::vector<int> fn_type(image.functions.size(), -1);
    for (std::size_t i = 0; i < image.functions.size(); ++i) {
        int tv = constraints.this_vars[i];
        if (tv >= 0)
            fn_type[i] = var_binding[static_cast<std::size_t>(tv)];
    }

    // ---- Phase 1b: variable grouping -----------------------------------
    // An object passed whole (offset 0) as `this` to a plain method is
    // the method's `this` variable. Groups bound to different types
    // never merge: two siblings calling one inherited method body must
    // not be conflated into one object.
    graph::UnionFind uf(n_vars);
    std::vector<int> root_type = var_binding;
    auto unite_guarded = [&](int a, int b) {
        int ra = uf.find(a);
        int rb = uf.find(b);
        if (ra == rb)
            return;
        int ta = root_type[static_cast<std::size_t>(ra)];
        int tb = root_type[static_cast<std::size_t>(rb)];
        if (ta >= 0 && tb >= 0 && ta != tb)
            return;
        uf.unite(ra, rb);
        root_type[static_cast<std::size_t>(uf.find(ra))] =
            std::max(ta, tb);
    };
    for (const Constraint& c : constraints.constraints) {
        if (c.kind != ConstraintKind::ThisArg || c.offset != 0)
            continue;
        auto it = fn_index.find(c.callee);
        if (it == fn_index.end())
            continue;
        if (fn_type[it->second] >= 0)
            continue; // ctor/dtor-shaped: subtype evidence, phase 2
        int callee_this = constraints.this_vars[it->second];
        if (callee_this >= 0)
            unite_guarded(c.var, callee_this);
    }
    // Allocation results typed by the ctor they are passed to.
    for (const Constraint& c : constraints.constraints) {
        if (c.kind != ConstraintKind::ThisArg || c.offset != 0)
            continue;
        auto it = fn_index.find(c.callee);
        if (it == fn_index.end() || fn_type[it->second] < 0)
            continue;
        int r = uf.find(c.var);
        if (root_type[static_cast<std::size_t>(r)] < 0)
            root_type[static_cast<std::size_t>(r)] = fn_type[it->second];
    }

    // ---- Evidence, bucketed per group ----------------------------------
    // root -> offset -> stored type -> first provenance
    std::map<int, std::map<std::int32_t, std::map<int, Prov>>> stores;
    for (const Constraint& c : constraints.constraints) {
        if (c.kind != ConstraintKind::VptrStore)
            continue;
        int t = type_index(types, c.vtable);
        if (t < 0)
            continue;
        stores[uf.find(c.var)][c.offset].try_emplace(
            t, Prov{c.func_addr, c.addr});
    }

    std::vector<Inconsistency> incs;
    auto inconsistent = [&](InconsistencyKind kind, int ta, int tb,
                            Prov prov, std::string detail) {
        Inconsistency inc;
        inc.kind = kind;
        if (ta >= 0)
            inc.vtable_a = types[static_cast<std::size_t>(ta)];
        if (tb >= 0)
            inc.vtable_b = types[static_cast<std::size_t>(tb)];
        inc.func_addr = prov.func_addr;
        inc.addr = prov.addr;
        inc.detail = std::move(detail);
        incs.push_back(std::move(inc));
    };

    // ---- Phase 2: derives-from edges -----------------------------------
    std::set<std::pair<int, int>> edges; // (derived, base)

    // Ctor-flow rule: passing the subobject at `off` to a ctor/dtor-
    // shaped callee relates the group's dominant vtable at `off`
    // (child) to the callee's own type (parent).
    for (const Constraint& c : constraints.constraints) {
        if (c.kind != ConstraintKind::ThisArg)
            continue;
        auto it = fn_index.find(c.callee);
        if (it == fn_index.end())
            continue;
        int parent = fn_type[it->second];
        if (parent < 0)
            continue;
        auto group = stores.find(uf.find(c.var));
        if (group == stores.end())
            continue;
        auto at_off = group->second.find(c.offset);
        if (at_off == group->second.end())
            continue;
        int child = dominant_type(at_off->second, info);
        if (child < 0 || child == parent)
            continue;
        if (structural::feasible_derivation(
                *info[static_cast<std::size_t>(child)],
                *info[static_cast<std::size_t>(parent)])) {
            edges.emplace(child, parent);
        } else {
            inconsistent(
                InconsistencyKind::SlotArity, child, parent,
                {c.func_addr, c.addr},
                support::format(
                    "ctor flow says vt %s derives from vt %s but the "
                    "derivation is structurally infeasible",
                    support::hex(types[static_cast<std::size_t>(child)])
                        .c_str(),
                    support::hex(types[static_cast<std::size_t>(parent)])
                        .c_str()));
        }
    }

    // Overwrite rule: two vtables stored at one (group, offset) are
    // related; structural feasibility picks the direction. Both
    // directions feasible = genuinely ambiguous, no edge.
    for (const auto& [root, by_off] : stores) {
        (void)root;
        for (const auto& [off, stored] : by_off) {
            (void)off;
            for (auto a = stored.begin(); a != stored.end(); ++a) {
                for (auto b = std::next(a); b != stored.end(); ++b) {
                    bool a_from_b = structural::feasible_derivation(
                        *info[static_cast<std::size_t>(a->first)],
                        *info[static_cast<std::size_t>(b->first)]);
                    bool b_from_a = structural::feasible_derivation(
                        *info[static_cast<std::size_t>(b->first)],
                        *info[static_cast<std::size_t>(a->first)]);
                    if (a_from_b && !b_from_a)
                        edges.emplace(a->first, b->first);
                    else if (b_from_a && !a_from_b)
                        edges.emplace(b->first, a->first);
                    else if (!a_from_b && !b_from_a)
                        inconsistent(
                            InconsistencyKind::SlotArity, a->first,
                            b->first, b->second,
                            "vtables overwritten at one object slot "
                            "but neither can derive from the other");
                }
            }
        }
    }

    // ---- Phase 3: cycle isolation --------------------------------------
    // Saturation wants base-before-derived, so topo edges run
    // base -> derived.
    std::vector<std::pair<int, int>> topo_edges;
    for (const auto& [child, parent] : edges)
        topo_edges.emplace_back(parent, child);
    graph::TopoOrder topo = graph::topo_sort(n_types, topo_edges);
    if (!topo.is_dag()) {
        std::vector<std::string> names;
        for (int t : topo.cyclic)
            names.push_back(
                support::hex(types[static_cast<std::size_t>(t)]));
        inconsistent(InconsistencyKind::CyclicDerives,
                     topo.cyclic.empty() ? -1 : topo.cyclic.front(), -1,
                     Prov{},
                     "derives-from cycle involving " +
                         support::join(names, ", "));
        std::set<int> dropped(topo.cyclic.begin(), topo.cyclic.end());
        for (auto it = edges.begin(); it != edges.end();) {
            if (dropped.count(it->first) || dropped.count(it->second))
                it = edges.erase(it);
            else
                ++it;
        }
        topo_edges.clear();
        for (const auto& [child, parent] : edges)
            topo_edges.emplace_back(parent, child);
        topo = graph::topo_sort(n_types, topo_edges);
    }

    for (const auto& [child, parent] : edges)
        result.direct_edges.emplace_back(
            types[static_cast<std::size_t>(child)],
            types[static_cast<std::size_t>(parent)]);

    // Transitive closure (ancestor sets, walked base-first).
    std::vector<std::vector<int>> parents_of(
        static_cast<std::size_t>(n_types));
    for (const auto& [child, parent] : edges)
        parents_of[static_cast<std::size_t>(child)].push_back(parent);
    std::vector<std::set<int>> ancestors(
        static_cast<std::size_t>(n_types));
    for (int t : topo.order) {
        for (int p : parents_of[static_cast<std::size_t>(t)]) {
            ancestors[static_cast<std::size_t>(t)].insert(p);
            ancestors[static_cast<std::size_t>(t)].insert(
                ancestors[static_cast<std::size_t>(p)].begin(),
                ancestors[static_cast<std::size_t>(p)].end());
        }
    }
    for (int t = 0; t < n_types; ++t) {
        for (int a : ancestors[static_cast<std::size_t>(t)])
            result.subtype_edges.emplace_back(
                types[static_cast<std::size_t>(t)],
                types[static_cast<std::size_t>(a)]);
    }
    std::sort(result.subtype_edges.begin(), result.subtype_edges.end());

    // ---- Phase 4: capability maps --------------------------------------
    std::vector<std::set<std::int32_t>> fields(
        static_cast<std::size_t>(n_types));
    std::vector<std::set<int>> slots(static_cast<std::size_t>(n_types));
    std::vector<std::set<std::int32_t>> vptr_offs(
        static_cast<std::size_t>(n_types));
    std::vector<int> vars_of(static_cast<std::size_t>(n_types), 0);
    result.var_type.assign(static_cast<std::size_t>(n_vars), -1);
    for (int v = 0; v < n_vars; ++v) {
        int t = root_type[static_cast<std::size_t>(uf.find(v))];
        result.var_type[static_cast<std::size_t>(v)] = t;
        if (t >= 0)
            ++vars_of[static_cast<std::size_t>(t)];
    }
    for (const auto& [root, by_off] : stores) {
        int t = root_type[static_cast<std::size_t>(root)];
        if (t < 0)
            continue;
        for (const auto& [off, stored] : by_off) {
            (void)stored;
            vptr_offs[static_cast<std::size_t>(t)].insert(off);
        }
    }
    std::map<std::pair<int, std::int32_t>, Prov> field_prov;
    for (const Constraint& c : constraints.constraints) {
        int t = result.var_type[static_cast<std::size_t>(c.var)];
        if (c.kind == ConstraintKind::FieldAccess) {
            if (t < 0)
                continue;
            fields[static_cast<std::size_t>(t)].insert(c.offset);
            field_prov.try_emplace({t, c.offset},
                                   Prov{c.func_addr, c.addr});
        } else if (c.kind == ConstraintKind::MethodSlot) {
            // Dispatch binds to the dominant vtable at the dispatch
            // offset (the subobject's own type under MI), falling
            // back to the group's primary type at offset 0.
            int target = -1;
            auto group = stores.find(uf.find(c.var));
            if (group != stores.end()) {
                auto at_off = group->second.find(c.offset);
                if (at_off != group->second.end())
                    target = dominant_type(at_off->second, info);
            }
            if (target < 0 && c.offset == 0)
                target = t;
            if (target < 0)
                continue;
            if (c.slot >= arity(target)) {
                inconsistent(
                    InconsistencyKind::SlotArity, target, -1,
                    {c.func_addr, c.addr},
                    support::format("dispatch names slot %d but the "
                                    "vtable has %d slots",
                                    c.slot, arity(target)));
            } else {
                slots[static_cast<std::size_t>(target)].insert(c.slot);
            }
        }
    }

    // Field evidence colliding with a vptr offset of the same type.
    for (int t = 0; t < n_types; ++t) {
        for (std::int32_t off : fields[static_cast<std::size_t>(t)]) {
            if (!vptr_offs[static_cast<std::size_t>(t)].count(off))
                continue;
            Prov prov = field_prov[{t, off}];
            inconsistent(InconsistencyKind::FieldOverlap, t, -1, prov,
                         support::format("field evidence at offset %d "
                                         "overlaps a vptr slot",
                                         off));
        }
    }

    // ---- Phase 5: saturation (base -> derived, topo order) -------------
    std::vector<std::vector<int>> children_of(
        static_cast<std::size_t>(n_types));
    for (const auto& [child, parent] : edges)
        children_of[static_cast<std::size_t>(parent)].push_back(child);
    for (int t : topo.order) {
        for (int child : children_of[static_cast<std::size_t>(t)]) {
            fields[static_cast<std::size_t>(child)].insert(
                fields[static_cast<std::size_t>(t)].begin(),
                fields[static_cast<std::size_t>(t)].end());
            slots[static_cast<std::size_t>(child)].insert(
                slots[static_cast<std::size_t>(t)].begin(),
                slots[static_cast<std::size_t>(t)].end());
        }
    }

    result.sketches.resize(static_cast<std::size_t>(n_types));
    for (int t = 0; t < n_types; ++t) {
        TypeSketch& sk = result.sketches[static_cast<std::size_t>(t)];
        sk.vtable = types[static_cast<std::size_t>(t)];
        sk.arity = arity(t);
        sk.fields.assign(fields[static_cast<std::size_t>(t)].begin(),
                         fields[static_cast<std::size_t>(t)].end());
        sk.slots.assign(slots[static_cast<std::size_t>(t)].begin(),
                        slots[static_cast<std::size_t>(t)].end());
        sk.vptr_offsets.assign(
            vptr_offs[static_cast<std::size_t>(t)].begin(),
            vptr_offs[static_cast<std::size_t>(t)].end());
        sk.num_vars = vars_of[static_cast<std::size_t>(t)];
    }

    std::sort(incs.begin(), incs.end(),
              [](const Inconsistency& a, const Inconsistency& b) {
                  return std::tie(a.kind, a.vtable_a, a.vtable_b,
                                  a.func_addr, a.addr, a.detail) <
                         std::tie(b.kind, b.vtable_a, b.vtable_b,
                                  b.func_addr, b.addr, b.detail);
              });
    incs.erase(std::unique(incs.begin(), incs.end()), incs.end());
    result.inconsistencies = std::move(incs);
    return result;
}

} // namespace rock::typeinf

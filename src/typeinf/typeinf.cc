#include "typeinf/typeinf.h"

#include <algorithm>

#include "obs/metrics.h"
#include "support/log.h"
#include "support/str.h"

namespace rock::typeinf {

int
TypeInfResult::index_of(std::uint32_t vtable_addr) const
{
    auto it = std::lower_bound(types.begin(), types.end(), vtable_addr);
    if (it != types.end() && *it == vtable_addr)
        return static_cast<int>(it - types.begin());
    return -1;
}

bool
TypeInfResult::subtype(std::uint32_t derived, std::uint32_t base) const
{
    return std::binary_search(subtype_edges.begin(),
                              subtype_edges.end(),
                              std::make_pair(derived, base));
}

std::vector<cfg::Diagnostic>
TypeInfResult::diagnostics() const
{
    std::vector<cfg::Diagnostic> diags;
    for (const Inconsistency& inc : inconsistencies) {
        cfg::Diagnostic d;
        d.kind = cfg::DiagKind::SubtypeInconsistent;
        d.func_addr = inc.func_addr;
        d.addr = inc.addr;
        d.detail = to_string(inc);
        diags.push_back(std::move(d));
    }
    return diags;
}

TypeInfResult
infer(const bir::BinaryImage& image, const cfg::CfgCache& cache,
      const std::vector<analysis::VTableInfo>& vtables,
      support::ThreadPool& pool)
{
    return infer(image, cache, vtables, pool, nullptr);
}

TypeInfResult
infer(const bir::BinaryImage& image, const cfg::CfgCache& cache,
      const std::vector<analysis::VTableInfo>& vtables,
      support::ThreadPool& pool,
      const std::shared_ptr<cache::ArtifactCache>& artifacts)
{
    TypeInfResult result;
    for (const auto& vt : vtables)
        result.types.push_back(vt.addr);
    std::sort(result.types.begin(), result.types.end());

    result.constraints =
        generate_constraints(image, cache, vtables, pool, artifacts);
    SolveResult solved = solve(result.constraints, image, vtables);
    result.sketches = std::move(solved.sketches);
    result.direct_edges = std::move(solved.direct_edges);
    result.subtype_edges = std::move(solved.subtype_edges);
    result.inconsistencies = std::move(solved.inconsistencies);
    result.var_type = std::move(solved.var_type);

    result.stats.functions_walked = image.functions.size();
    result.stats.unique_bodies = result.constraints.unique_bodies;
    result.stats.constraints = result.constraints.constraints.size();
    result.stats.object_vars =
        static_cast<std::size_t>(result.constraints.num_vars);
    result.stats.subtype_edges = result.subtype_edges.size();
    result.stats.inconsistencies = result.inconsistencies.size();

    if (obs::metrics_enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("typeinf.functions_walked")
            .add(result.stats.functions_walked);
        reg.counter("typeinf.unique_bodies")
            .add(result.stats.unique_bodies);
        reg.counter("typeinf.constraints").add(result.stats.constraints);
        reg.counter("typeinf.object_vars").add(result.stats.object_vars);
        reg.counter("typeinf.subtype_edges")
            .add(result.stats.subtype_edges);
        reg.counter("typeinf.inconsistencies")
            .add(result.stats.inconsistencies);
    }

    ROCK_LOG_INFO << "typeinf: " << result.stats.constraints
                  << " constraints over " << result.stats.object_vars
                  << " vars (" << result.stats.unique_bodies
                  << " unique bodies), " << result.stats.subtype_edges
                  << " subtype facts, " << result.stats.inconsistencies
                  << " inconsistencies";
    return result;
}

TypeInfResult
infer(const bir::BinaryImage& image, int threads)
{
    support::ThreadPool pool(support::resolve_threads(threads));
    cfg::CfgCache cache(image);
    cache.build_all(pool);
    std::vector<analysis::VTableInfo> vtables =
        analysis::scan_vtables(image);
    return infer(image, cache, vtables, pool);
}

} // namespace rock::typeinf

/**
 * @file
 * Simple-subtyping solver over the generated constraints.
 *
 * BinSub's observation, transplanted to VM32: when method sets are
 * the only type structure a binary retains, polymorphic structural
 * subtyping collapses to a *simple* (non-structural) subtyping
 * problem that unification plus a deterministic saturation solves in
 * near-linear time. The solver runs three phases:
 *
 *  1. Binding -- object variables are grouped with union-find (a
 *     `this` pointer flowing into a plain method body is the same
 *     object) and each group is bound to the max-arity vtable stored
 *     at its offset 0. Type bindings never merge: uniting two groups
 *     bound to different types is refused, so two siblings sharing an
 *     inherited method body are never conflated.
 *  2. Subtyping -- two edge rules, both validated against the
 *     structural feasibility rules (structural::feasible_derivation):
 *       - ctor flow: a group passes its subobject at offset `o` as
 *         `this` to a ctor/dtor-shaped callee; the group's max-arity
 *         vtable at `o` derives from the callee's own type (you call
 *         your parent's ctor/dtor, never your child's -- the rule is
 *         direction-safe for both ctor and MSVC-style dtor store
 *         orders).
 *       - overwrite: two distinct vtables stored at the same
 *         (group, offset) are related; the direction is whichever
 *         orientation is structurally feasible (both feasible ->
 *         ambiguous, skipped; neither -> inconsistent evidence).
 *  3. Saturation -- derives-from edges are topologically ordered
 *     (graph/order.h; cycles are reported and their edges dropped),
 *     the transitive closure is materialized, and capabilities
 *     (fields, dispatched slots) are pushed base -> derived.
 *
 * Malformed evidence never crashes the solver; it is returned as a
 * deterministic Inconsistency list (rockcheck's subtype-inconsistent
 * diagnostic, docs/STATIC_ANALYSIS.md):
 *
 *   SlotArity      a dispatch through a type's vtable names a slot
 *                  beyond its arity, or subtype evidence contradicts
 *                  the structural feasibility rules
 *   FieldOverlap   a type's field evidence collides with one of its
 *                  vptr offsets
 *   CyclicDerives  the derives-from evidence contains a cycle
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/vtable_scan.h"
#include "bir/image.h"
#include "typeinf/constraints.h"

namespace rock::typeinf {

/** Everything the solver learned about one type (vtable). */
struct TypeSketch {
    /** The type's vtable address (identity). */
    std::uint32_t vtable = 0;
    /** Vtable slot count. */
    int arity = 0;
    /** Field offsets observed on objects of this type. Direct
     *  evidence plus everything inherited during saturation. */
    std::vector<std::int32_t> fields;
    /** Vtable slots observed dispatched on this type (likewise
     *  saturated from bases). */
    std::vector<int> slots;
    /** Object offsets at which bound groups store vtables -- the
     *  observed subobject layout (0 for the primary vtable). */
    std::vector<std::int32_t> vptr_offsets;
    /** Object variables bound to this type. */
    int num_vars = 0;

    bool operator==(const TypeSketch&) const = default;
};

/** Why a set of constraints cannot describe a real hierarchy. */
enum class InconsistencyKind : std::uint8_t {
    SlotArity,
    FieldOverlap,
    CyclicDerives,
};

/** Stable kebab-case name of @p kind ("slot-arity", ...). */
const char* inconsistency_name(InconsistencyKind kind);

/** One piece of contradictory evidence. */
struct Inconsistency {
    InconsistencyKind kind = InconsistencyKind::SlotArity;
    /** Primary vtable involved (0 when unknown). */
    std::uint32_t vtable_a = 0;
    /** Second vtable (pair rules; 0 otherwise). */
    std::uint32_t vtable_b = 0;
    /** Provenance of the offending evidence (0 for global findings
     *  such as cycles). */
    std::uint32_t func_addr = 0;
    std::uint32_t addr = 0;
    std::string detail;

    bool operator==(const Inconsistency&) const = default;
};

/** "[slot-arity] vt 0x100040: ..." (diagnostic text). */
std::string to_string(const Inconsistency& inc);

/** Solver output over the image's type set. */
struct SolveResult {
    /** Sketches indexed like the sorted vtable-address order. */
    std::vector<TypeSketch> sketches;
    /** Direct derives-from evidence: (derived vt, base vt), sorted,
     *  deduplicated, cycle edges removed. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> direct_edges;
    /** Transitive closure of direct_edges, sorted. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> subtype_edges;
    /** Sorted by (kind, vtable_a, vtable_b, addr). */
    std::vector<Inconsistency> inconsistencies;
    /** Bound type index per object variable (-1 = unbound). */
    std::vector<int> var_type;
};

/**
 * Solve @p constraints against the image's @p vtables. Serial and
 * deterministic: output depends only on the (ordered) constraint set.
 * @p image supplies the function table (callee resolution).
 */
SolveResult solve(const ConstraintSet& constraints,
                  const bir::BinaryImage& image,
                  const std::vector<analysis::VTableInfo>& vtables);

} // namespace rock::typeinf

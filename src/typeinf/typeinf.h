/**
 * @file
 * Structural-subtyping type inference over a VM32 image.
 *
 * Facade of the typeinf/ library (DESIGN.md Section 5.5): constraint
 * generation (constraints.h) plus the simple-subtyping solver
 * (solver.h), packaged as one pipeline stage. The pipeline fuses the
 * solved derives-from facts into the arborescence objective -- a
 * solved "P derives from C" prunes the contradictory candidate edge
 * C -> P outright, and a solved "C derives from P" discounts the
 * statistical distance of the agreeing edge P -> C -- so structural
 * evidence sharpens the DKL objective instead of merely filtering it
 * (docs/TYPE_INFERENCE.md).
 *
 * Everything here obeys the pipeline determinism contract: results
 * are bit-identical for every thread count, and malformed evidence
 * becomes diagnostics (DiagKind::SubtypeInconsistent), never a crash.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/vtable_scan.h"
#include "bir/image.h"
#include "cfg/cfg_cache.h"
#include "cfg/verify.h"
#include "support/parallel.h"
#include "typeinf/constraints.h"
#include "typeinf/solver.h"

namespace rock::typeinf {

/** Aggregate counts of one inference run (obs counters mirror it). */
struct TypeInfStats {
    std::size_t functions_walked = 0;
    std::size_t unique_bodies = 0;
    std::size_t constraints = 0;
    std::size_t object_vars = 0;
    std::size_t subtype_edges = 0;
    std::size_t inconsistencies = 0;

    bool operator==(const TypeInfStats&) const = default;
};

/** Full output of the inference pass. */
struct TypeInfResult {
    /** Type identities: vtable addresses, ascending. */
    std::vector<std::uint32_t> types;
    /** Every generated constraint (provenance-tagged). */
    ConstraintSet constraints;
    /** Per-type capability sketches, indexed like `types`. */
    std::vector<TypeSketch> sketches;
    /** Direct derives-from facts: (derived vt, base vt), sorted. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> direct_edges;
    /** Transitive closure of direct_edges, sorted. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> subtype_edges;
    /** Contradictory evidence, deterministic order. */
    std::vector<Inconsistency> inconsistencies;
    /** Bound type index per object variable (-1 = unbound). */
    std::vector<int> var_type;
    TypeInfStats stats;

    /** Index of @p vtable_addr in `types`, or -1. */
    int index_of(std::uint32_t vtable_addr) const;

    /** Is "derived ⊑ base" a solved fact (closure lookup)? */
    bool subtype(std::uint32_t derived, std::uint32_t base) const;

    /** Inconsistencies as rockcheck subtype-inconsistent findings. */
    std::vector<cfg::Diagnostic> diagnostics() const;
};

/**
 * Run inference over @p image on @p pool, reusing the already-built
 * @p cache and discovered @p vtables from earlier stages.
 */
TypeInfResult infer(const bir::BinaryImage& image,
                    const cfg::CfgCache& cache,
                    const std::vector<analysis::VTableInfo>& vtables,
                    support::ThreadPool& pool);

/** As above, threading @p artifacts through to the memoizing
 *  generate_constraints overload (kind "typeinf"). All typeinf.*
 *  counters derive from the (cached or recomputed) outputs, so warm
 *  runs replay them bit-identically. */
TypeInfResult infer(const bir::BinaryImage& image,
                    const cfg::CfgCache& cache,
                    const std::vector<analysis::VTableInfo>& vtables,
                    support::ThreadPool& pool,
                    const std::shared_ptr<cache::ArtifactCache>& artifacts);

/** Self-contained variant: builds its own cache and vtable scan on a
 *  transient pool of resolve_threads(@p threads) workers. */
TypeInfResult infer(const bir::BinaryImage& image, int threads = 1);

} // namespace rock::typeinf

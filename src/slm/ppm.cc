#include "slm/ppm.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "support/error.h"

namespace rock::slm {

namespace {

/** Per-thread mirror of `slm.escapes`, bumped even when metrics are
 *  disabled so cached artifacts stay metrics-setting-independent. */
thread_local std::uint64_t tls_escape_tally = 0;

/** Escape-taken telemetry (docs/OBSERVABILITY.md: slm.escapes). The
 *  escape count is a pure function of (model, query) so the total
 *  stays deterministic across thread counts. */
void
count_escape()
{
    static obs::Counter& escapes =
        obs::Registry::global().counter("slm.escapes");
    escapes.add();
    ++tls_escape_tally;
}

} // namespace

std::uint64_t
thread_escape_tally()
{
    return tls_escape_tally;
}

void
PpmModel::adopt_trie(ContextTrie trie)
{
    ROCK_ASSERT(trie.depth() == trie_.depth(),
                "trie snapshot depth mismatch");
    trie_ = std::move(trie);
    finalized_ = false;
}

void
PpmModel::train(const std::vector<int>& seq)
{
    for (int symbol : seq) {
        ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                    "symbol outside alphabet");
    }
    trie_.add_sequence(seq);
    finalized_ = false;
}

void
PpmModel::finalize()
{
    if (finalized_)
        return;
    const std::size_t nodes = trie_.node_count();
    prob_offset_.assign(nodes + 1, 0);
    escape_p_.assign(nodes, 0.0);
    prob_vals_.clear();

    for (std::size_t id = 0; id < nodes; ++id) {
        auto node = static_cast<ContextTrie::NodeId>(id);
        prob_offset_[id] =
            static_cast<std::uint32_t>(prob_vals_.size());
        const auto& entries = trie_.counts(node);
        long total = trie_.total(node);
        long distinct = static_cast<long>(entries.size());
        if (total <= 0 || distinct <= 0)
            continue; // query path skips the node entirely
        bool covers = distinct >= static_cast<long>(alphabet_size_);
        double n = static_cast<double>(total);
        double q = static_cast<double>(distinct);
        double esc_p = 0.0;
        if (!covers) {
            switch (escape_) {
              case EscapeMethod::A: esc_p = 1.0 / (n + 1.0); break;
              case EscapeMethod::C: esc_p = q / (n + q); break;
              case EscapeMethod::D: esc_p = q / (2.0 * n); break;
            }
        }
        escape_p_[id] = esc_p;
        for (const auto& [symbol, count] : entries) {
            (void)symbol;
            double c = static_cast<double>(count);
            double sym_p = 0.0;
            if (covers) {
                sym_p = c / n;
            } else {
                switch (escape_) {
                  case EscapeMethod::A:
                    sym_p = c / (n + 1.0);
                    break;
                  case EscapeMethod::C:
                    sym_p = c / (n + q);
                    break;
                  case EscapeMethod::D:
                    sym_p = (2.0 * c - 1.0) / (2.0 * n);
                    break;
                }
            }
            prob_vals_.push_back(sym_p);
        }
    }
    prob_offset_[nodes] =
        static_cast<std::uint32_t>(prob_vals_.size());
    finalized_ = true;
}

double
PpmModel::prob(int symbol, const std::vector<int>& context) const
{
    ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                "symbol outside alphabet");
    if (!finalized_ || exclusion_)
        return general_prob(symbol, context);

    // Fast path: precomputed per-context probability vectors. Walk
    // from the deepest matched context toward the root, multiplying
    // escape probabilities until the symbol is found.
    std::vector<ContextTrie::NodeId> chain;
    trie_.context_chain(context, chain);

    double escape_acc = 1.0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        ContextTrie::NodeId node = *it;
        if (trie_.total(node) <= 0)
            continue; // nothing usable at this order
        const auto& entries = trie_.counts(node);
        auto found = std::lower_bound(
            entries.begin(), entries.end(), symbol,
            [](const auto& entry, int k) { return entry.first < k; });
        if (found != entries.end() && found->first == symbol) {
            std::size_t slot =
                prob_offset_[static_cast<std::size_t>(node)] +
                static_cast<std::size_t>(found - entries.begin());
            return escape_acc * prob_vals_[slot];
        }
        count_escape();
        escape_acc *= escape_p_[static_cast<std::size_t>(node)];
    }
    return escape_acc / static_cast<double>(alphabet_size_);
}

double
PpmModel::general_prob(int symbol,
                       const std::vector<int>& context) const
{
    std::vector<ContextTrie::NodeId> chain;
    trie_.context_chain(context, chain);

    double escape_acc = 1.0;
    std::set<int> excluded;

    // Walk from the deepest matched context down to order 0.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        ContextTrie::NodeId node = *it;

        long total = trie_.total(node);
        long distinct = static_cast<long>(trie_.distinct(node));
        if (exclusion_ && !excluded.empty()) {
            for (int ex : excluded) {
                int c = trie_.count_of(node, ex);
                if (c > 0) {
                    total -= c;
                    --distinct;
                }
            }
        }
        if (total <= 0 || distinct <= 0) {
            // Nothing usable at this order once exclusions apply.
            continue;
        }

        // When the context has already seen every symbol still in
        // play, there is nothing to escape to: drop the escape
        // reservation so the conditional distribution stays proper.
        long remaining = alphabet_size_;
        if (exclusion_)
            remaining -= static_cast<long>(excluded.size());
        bool covers = distinct >= remaining;

        int raw_count = trie_.count_of(node, symbol);
        bool usable = raw_count > 0 &&
                      (!exclusion_ || !excluded.count(symbol));

        // Symbol and escape probabilities per escape method
        // (Cleary/Witten A, Moffat C, Howard D).
        double sym_p = 0.0;
        double esc_p = 0.0;
        double count = usable ? static_cast<double>(raw_count) : 0.0;
        double n = static_cast<double>(total);
        double q = static_cast<double>(distinct);
        if (covers) {
            sym_p = count / n;
            esc_p = 0.0;
        } else {
            switch (escape_) {
              case EscapeMethod::A:
                sym_p = count / (n + 1.0);
                esc_p = 1.0 / (n + 1.0);
                break;
              case EscapeMethod::C:
                sym_p = count / (n + q);
                esc_p = q / (n + q);
                break;
              case EscapeMethod::D:
                sym_p = (2.0 * count - 1.0) / (2.0 * n);
                esc_p = q / (2.0 * n);
                break;
            }
        }
        if (usable)
            return escape_acc * sym_p;
        count_escape();
        escape_acc *= esc_p;
        if (exclusion_) {
            for (const auto& [seen, seen_count] : trie_.counts(node)) {
                (void)seen_count;
                excluded.insert(seen);
            }
        }
    }

    // Order -1: uniform over the (non-excluded) alphabet.
    long remaining = alphabet_size_;
    if (exclusion_)
        remaining -= static_cast<long>(excluded.size());
    ROCK_ASSERT(remaining > 0, "exclusion removed the whole alphabet");
    return escape_acc / static_cast<double>(remaining);
}

} // namespace rock::slm

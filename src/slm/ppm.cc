#include "slm/ppm.h"

#include <set>

#include "obs/metrics.h"
#include "support/error.h"

namespace rock::slm {

void
PpmModel::train(const std::vector<int>& seq)
{
    for (int symbol : seq) {
        ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                    "symbol outside alphabet");
    }
    trie_.add_sequence(seq);
}

double
PpmModel::prob(int symbol, const std::vector<int>& context) const
{
    ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                "symbol outside alphabet");

    std::vector<const ContextTrie::Node*> chain;
    trie_.context_chain(context, chain);

    double escape_acc = 1.0;
    std::set<int> excluded;

    // Walk from the deepest matched context down to order 0.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const ContextTrie::Node& node = **it;

        long total = node.total;
        long distinct = static_cast<long>(node.counts.size());
        if (exclusion_ && !excluded.empty()) {
            for (int ex : excluded) {
                auto found = node.counts.find(ex);
                if (found != node.counts.end()) {
                    total -= found->second;
                    --distinct;
                }
            }
        }
        if (total <= 0 || distinct <= 0) {
            // Nothing usable at this order once exclusions apply.
            continue;
        }

        // When the context has already seen every symbol still in
        // play, there is nothing to escape to: drop the escape
        // reservation so the conditional distribution stays proper.
        long remaining = alphabet_size_;
        if (exclusion_)
            remaining -= static_cast<long>(excluded.size());
        bool covers = distinct >= remaining;

        auto found = node.counts.find(symbol);
        bool usable = found != node.counts.end() &&
                      (!exclusion_ || !excluded.count(symbol));

        // Symbol and escape probabilities per escape method
        // (Cleary/Witten A, Moffat C, Howard D).
        double sym_p = 0.0;
        double esc_p = 0.0;
        double count = usable ? static_cast<double>(found->second)
                              : 0.0;
        double n = static_cast<double>(total);
        double q = static_cast<double>(distinct);
        if (covers) {
            sym_p = count / n;
            esc_p = 0.0;
        } else {
            switch (escape_) {
              case EscapeMethod::A:
                sym_p = count / (n + 1.0);
                esc_p = 1.0 / (n + 1.0);
                break;
              case EscapeMethod::C:
                sym_p = count / (n + q);
                esc_p = q / (n + q);
                break;
              case EscapeMethod::D:
                sym_p = (2.0 * count - 1.0) / (2.0 * n);
                esc_p = q / (2.0 * n);
                break;
            }
        }
        if (usable)
            return escape_acc * sym_p;
        // Hot path: one relaxed add per escape taken; the escape
        // count is a pure function of (model, query) so the total
        // stays deterministic across thread counts.
        {
            static obs::Counter& escapes =
                obs::Registry::global().counter("slm.escapes");
            escapes.add();
        }
        escape_acc *= esc_p;
        if (exclusion_) {
            for (const auto& [seen, count] : node.counts) {
                (void)count;
                excluded.insert(seen);
            }
        }
    }

    // Order -1: uniform over the (non-excluded) alphabet.
    long remaining = alphabet_size_;
    if (exclusion_)
        remaining -= static_cast<long>(excluded.size());
    ROCK_ASSERT(remaining > 0, "exclusion removed the whole alphabet");
    return escape_acc / static_cast<double>(remaining);
}

} // namespace rock::slm

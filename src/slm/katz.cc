#include "slm/katz.h"

#include <algorithm>

#include "support/error.h"

namespace rock::slm {

void
KatzModel::train(const std::vector<int>& seq)
{
    for (int symbol : seq) {
        ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                    "symbol outside alphabet");
    }
    trie_.add_sequence(seq);
    coc_valid_ = false;
}

void
KatzModel::adopt_trie(ContextTrie trie)
{
    ROCK_ASSERT(trie.depth() == trie_.depth(),
                "trie snapshot depth mismatch");
    trie_ = std::move(trie);
    coc_valid_ = false;
}

void
KatzModel::finalize()
{
    if (coc_valid_)
        return;
    coc_ = trie_.count_of_counts();
    coc_valid_ = true;
}

double
KatzModel::discount(int order, int r) const
{
    if (r > threshold_)
        return 1.0;
    const auto& table = coc_[static_cast<std::size_t>(order)];
    auto lookup = [&table](int key) -> long {
        auto it = std::lower_bound(
            table.begin(), table.end(), key,
            [](const auto& entry, int k) { return entry.first < k; });
        if (it == table.end() || it->first != key)
            return 0;
        return it->second;
    };
    long nr = lookup(r);
    long nr1 = lookup(r + 1);
    if (nr == 0 || nr1 == 0)
        return 1.0;
    double r_star = static_cast<double>(r + 1) *
                    static_cast<double>(nr1) /
                    static_cast<double>(nr);
    double d = r_star / static_cast<double>(r);
    // Keep the discount sane: it must remove mass, not add it, and
    // must not zero out observed events.
    if (d <= 0.0 || d >= 1.0)
        return 1.0;
    return d;
}

double
KatzModel::prob_at(const std::vector<ContextTrie::NodeId>& chain,
                   std::size_t level, int symbol) const
{
    if (level >= chain.size()) {
        // Below order 0: uniform.
        return 1.0 / static_cast<double>(alphabet_size_);
    }
    ContextTrie::NodeId node = chain[level];
    // chain is deepest-first; the node's trie order is its distance
    // from the root end of the chain.
    int order = static_cast<int>(chain.size() - 1 - level);
    double total = static_cast<double>(trie_.total(node));

    int raw = trie_.count_of(node, symbol);
    if (raw > 0) {
        double d = discount(order, raw);
        return d * static_cast<double>(raw) / total;
    }

    // Leftover mass after discounting the seen successors.
    double seen_mass = 0.0;
    double lower_seen = 0.0;
    for (const auto& [sym, count] : trie_.counts(node)) {
        seen_mass += discount(order, count) *
                     static_cast<double>(count) / total;
        lower_seen += prob_at(chain, level + 1, sym);
    }
    double leftover = 1.0 - seen_mass;
    if (leftover <= 0.0)
        leftover = 1e-12;
    double lower_unseen = 1.0 - lower_seen;
    if (lower_unseen <= 1e-12)
        lower_unseen = 1e-12;
    double alpha = leftover / lower_unseen;
    return alpha * prob_at(chain, level + 1, symbol);
}

double
KatzModel::prob(int symbol, const std::vector<int>& context) const
{
    ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                "symbol outside alphabet");
    if (!coc_valid_) {
        coc_ = trie_.count_of_counts();
        coc_valid_ = true;
    }
    std::vector<ContextTrie::NodeId> chain;
    trie_.context_chain(context, chain);
    // Evaluate from the deepest matched context; prob_at walks toward
    // the root on back-off, so reverse the chain (deepest first).
    std::vector<ContextTrie::NodeId> reversed(chain.rbegin(),
                                              chain.rend());
    return prob_at(reversed, 0, symbol);
}

} // namespace rock::slm

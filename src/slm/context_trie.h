/**
 * @file
 * Suffix-context trie with next-symbol counts -- flat arena edition.
 *
 * The trie stores, for every context s of length 0..D seen in
 * training, the count of each symbol that followed s. Children are
 * keyed by the *most recent* context symbol first, so looking up a
 * context walks backwards through the history.
 *
 * Layout: nodes live in one contiguous arena (`std::vector`) and
 * refer to each other by 32-bit index, never by pointer. Per node,
 * successor counts and child links are sorted small vectors -- the
 * same ascending-symbol iteration order the original
 * `std::map<int, ...>` node gave, so every probability computed over
 * the trie is byte-identical to the pointer implementation
 * (tests/flat_trie_test.cc pins this property). Node totals sit in a
 * separate SoA vector so the hot escape/backoff loops touch only
 * contiguous memory.
 *
 * Compared to the original one-heap-allocation-per-map-node design
 * this removes the allocator from the training hot path almost
 * entirely and turns context-chain walks into index arithmetic over
 * two or three cache lines.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rock::slm {

/** Count trie over contexts up to a fixed depth. */
class ContextTrie {
  public:
    /** Arena index of a node; the root is always node 0. */
    using NodeId = std::int32_t;
    static constexpr NodeId kRoot = 0;

    explicit ContextTrie(int depth) : depth_(depth)
    {
        nodes_.emplace_back();
        totals_.push_back(0);
    }

    /** Record all context/successor pairs of @p seq. */
    void add_sequence(const std::vector<int>& seq);

    /**
     * Deepest stored node for the trailing context of @p context,
     * bounded by the trie depth; the path found is appended to
     * @p chain from shallowest (root) to deepest.
     */
    void context_chain(const std::vector<int>& context,
                       std::vector<NodeId>& chain) const;

    int depth() const { return depth_; }

    /** Sum of successor counts at @p node. */
    long total(NodeId node) const
    {
        return totals_[static_cast<std::size_t>(node)];
    }

    /** Number of distinct successors seen at @p node. */
    std::size_t distinct(NodeId node) const
    {
        return nodes_[static_cast<std::size_t>(node)].counts.size();
    }

    /**
     * Successor counts of @p node: (symbol, count) pairs sorted by
     * symbol ascending -- contiguous, iteration-stable.
     */
    const std::vector<std::pair<int, int>>& counts(NodeId node) const
    {
        return nodes_[static_cast<std::size_t>(node)].counts;
    }

    /** Count of @p symbol at @p node (0 when unseen). */
    int count_of(NodeId node, int symbol) const;

    /** Child of @p node for previous-symbol @p symbol, or -1. */
    NodeId child(NodeId node, int symbol) const;

    /**
     * Child links of @p node: (previous context symbol, arena index)
     * pairs sorted by symbol ascending. Snapshot/traversal surface;
     * indices are stable because the arena never reorders.
     */
    const std::vector<std::pair<int, NodeId>>& children_of(
        NodeId node) const
    {
        return nodes_[static_cast<std::size_t>(node)].children;
    }

    /**
     * Replace the whole arena from snapshot data (src/slm/snapshot.h).
     * Node 0 is the root; `counts`/`children`/`totals` are parallel
     * per-node vectors in arena order, each (key, value) list sorted
     * by key ascending. Returns false -- leaving the trie as a fresh
     * root-only arena -- when the shapes are inconsistent (size
     * mismatch, empty arena, or a child index outside the arena).
     */
    bool restore(
        std::vector<std::vector<std::pair<int, int>>> counts,
        std::vector<std::vector<std::pair<int, NodeId>>> children,
        std::vector<long> totals);

    /** Count-of-counts per context order (for Good-Turing). */
    std::vector<std::vector<std::pair<int, long>>>
    count_of_counts() const;

    /** Total stored nodes including the root (model-size metric:
     *  obs counter `slm.trie_nodes`). */
    std::size_t node_count() const { return nodes_.size(); }

  private:
    struct Node {
        /** (next symbol, occurrence count), sorted by symbol. */
        std::vector<std::pair<int, int>> counts;
        /** (previous context symbol, arena index), sorted by symbol. */
        std::vector<std::pair<int, NodeId>> children;
    };

    /** counts[] slot of @p symbol at @p node, inserting at the sorted
     *  position when absent. */
    int& count_slot(NodeId node, int symbol);

    /** Child for @p symbol at @p node, allocating it when absent. */
    NodeId child_or_create(NodeId node, int symbol);

    int depth_;
    std::vector<Node> nodes_;
    /** Per-node successor-count totals (SoA next to the arena). */
    std::vector<long> totals_;
};

} // namespace rock::slm

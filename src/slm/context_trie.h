/**
 * @file
 * Suffix-context trie with next-symbol counts.
 *
 * The trie stores, for every context s of length 0..D seen in
 * training, the count of each symbol that followed s. Children are
 * keyed by the *most recent* context symbol first, so looking up a
 * context walks backwards through the history.
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

namespace rock::slm {

/** Count trie over contexts up to a fixed depth. */
class ContextTrie {
  public:
    struct Node {
        /** next symbol -> occurrence count */
        std::map<int, int> counts;
        /** sum of counts */
        long total = 0;
        /** context extension: previous symbol -> deeper node */
        std::map<int, std::unique_ptr<Node>> children;
    };

    explicit ContextTrie(int depth) : depth_(depth) {}

    /** Record all context/successor pairs of @p seq. */
    void add_sequence(const std::vector<int>& seq);

    /**
     * Deepest stored node for the trailing context of @p context,
     * bounded by the trie depth; the path found is appended to
     * @p chain from shallowest (root) to deepest.
     */
    void context_chain(const std::vector<int>& context,
                       std::vector<const Node*>& chain) const;

    const Node& root() const { return root_; }
    int depth() const { return depth_; }

    /** Count-of-counts per context order (for Good-Turing). */
    std::vector<std::map<int, long>> count_of_counts() const;

    /** Total stored nodes including the root (model-size metric:
     *  obs counter `slm.trie_nodes`). */
    std::size_t node_count() const;

  private:
    int depth_;
    Node root_;
};

} // namespace rock::slm

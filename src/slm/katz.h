/**
 * @file
 * Katz back-off model with Good-Turing discounting.
 *
 * The paper (Section 3.1) notes the Katz back-off model as an
 * alternative to PPM-C. Counts r at or below a threshold are
 * discounted to r* = (r+1) N_{r+1} / N_r using per-order
 * count-of-count statistics; the freed probability mass is
 * redistributed over unseen successors proportionally to the
 * next-shorter-context model.
 *
 * finalize() precomputes the count-of-counts tables; the lazy
 * rebuild in prob() remains for direct (train-then-query,
 * single-threaded) users, but a finalized model's prob() is pure and
 * safe to call from many threads at once.
 */
#pragma once

#include "slm/context_trie.h"
#include "slm/model.h"

namespace rock::slm {

/** Katz back-off model. */
class KatzModel final : public LanguageModel {
  public:
    KatzModel(int alphabet_size, int depth, int threshold)
        : trie_(depth), alphabet_size_(alphabet_size),
          threshold_(threshold) {}

    void train(const std::vector<int>& seq) override;
    double prob(int symbol,
                const std::vector<int>& context) const override;
    /** Precompute Good-Turing count-of-counts (idempotent). */
    void finalize() override;
    int alphabet_size() const override { return alphabet_size_; }

    const ContextTrie& trie() const { return trie_; }

    /** Replace the trained trie (snapshot restore). The depth must
     *  match the constructed depth; the caller re-finalizes. */
    void adopt_trie(ContextTrie trie);

  private:
    /** Discount factor d_r for a raw count @p r at @p order. */
    double discount(int order, int r) const;

    /** Probability using the chain suffix starting at @p level;
     *  @p chain is deepest-first. */
    double prob_at(const std::vector<ContextTrie::NodeId>& chain,
                   std::size_t level, int symbol) const;

    ContextTrie trie_;
    int alphabet_size_;
    int threshold_;
    /** Count-of-counts per order, each (r, N_r) sorted by r;
     *  rebuilt lazily after training unless finalize() ran. */
    mutable std::vector<std::vector<std::pair<int, long>>> coc_;
    mutable bool coc_valid_ = false;
};

} // namespace rock::slm

/**
 * @file
 * Trained-model snapshots for the artifact cache (src/cache/).
 *
 * A trained model is its count trie: every finalize() product (PPM
 * probability vectors, Katz count-of-counts) is a pure function of
 * the trie plus the constructor knobs, so the snapshot stores only
 * the trie and the restore path re-runs finalize(). The producer's
 * and consumer's ModelConfig / alphabet size are part of the cache
 * key's fingerprint, never of the payload.
 *
 * Caveat for key builders: tries store *interned* symbol ids, so a
 * snapshot is only valid under the exact global alphabet that
 * produced it -- fingerprints must fold in an alphabet digest (see
 * src/rock/artifacts.h).
 */
#pragma once

#include <memory>

#include "cache/artifact_cache.h"
#include "slm/model.h"

namespace rock::slm {

/**
 * Append a snapshot of @p model's trained trie to @p out. The model
 * must be one of the three concrete families (always true for
 * make_model() products).
 */
void snapshot_model(const LanguageModel& model, cache::ByteWriter& out);

/**
 * Rebuild a finalized model from a snapshot produced under the same
 * (config, alphabet_size). Returns nullptr on any malformed input
 * (truncation, bit flips, shape mismatch) -- the caller treats that
 * as a cache miss and retrains.
 */
std::unique_ptr<LanguageModel> restore_model(const ModelConfig& config,
                                             int alphabet_size,
                                             cache::ByteReader& in);

} // namespace rock::slm

/**
 * @file
 * PPM-C variable-order n-gram model (paper Section 3.1).
 *
 * Prediction by partial matching, escape method C: a context with q
 * distinct successors and n total observations assigns
 *
 *   P(sigma | s) = c(sigma) / (n + q)          when sigma followed s,
 *   P(escape | s) = q / (n + q)                otherwise,
 *
 * recursing to the next shorter context on escape and bottoming out in
 * the uniform distribution over the alphabet. With `exclusion`
 * enabled, symbols already accounted for at longer contexts are
 * removed from shorter-context distributions (full PPM-C; conditional
 * distributions then sum to exactly 1).
 */
#pragma once

#include "slm/context_trie.h"
#include "slm/model.h"

namespace rock::slm {

/** PPM model (escape methods A, C, or D). */
class PpmModel final : public LanguageModel {
  public:
    PpmModel(int alphabet_size, int depth, bool exclusion,
             EscapeMethod escape = EscapeMethod::C)
        : trie_(depth), alphabet_size_(alphabet_size),
          exclusion_(exclusion), escape_(escape) {}

    void train(const std::vector<int>& seq) override;
    double prob(int symbol,
                const std::vector<int>& context) const override;
    int alphabet_size() const override { return alphabet_size_; }

    const ContextTrie& trie() const { return trie_; }

  private:
    ContextTrie trie_;
    int alphabet_size_;
    bool exclusion_;
    EscapeMethod escape_;
};

} // namespace rock::slm

/**
 * @file
 * PPM-C variable-order n-gram model (paper Section 3.1).
 *
 * Prediction by partial matching, escape method C: a context with q
 * distinct successors and n total observations assigns
 *
 *   P(sigma | s) = c(sigma) / (n + q)          when sigma followed s,
 *   P(escape | s) = q / (n + q)                otherwise,
 *
 * recursing to the next shorter context on escape and bottoming out in
 * the uniform distribution over the alphabet. With `exclusion`
 * enabled, symbols already accounted for at longer contexts are
 * removed from shorter-context distributions (full PPM-C; conditional
 * distributions then sum to exactly 1).
 *
 * Hot path: finalize() precomputes, for every stored context node,
 * the per-successor conditional probabilities and the escape
 * probability into contiguous vectors indexed by the flat trie's
 * node ids. A finalized query (the divergence stage's inner loop) is
 * then a context-chain walk plus one binary search and one or two
 * contiguous-array reads per order -- no maps, no allocation. The
 * precomputed values are the *same* IEEE expressions the on-demand
 * path evaluates, so finalization never changes a probability
 * (tests/flat_trie_test.cc pins byte-identity against the original
 * pointer-trie implementation).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "slm/context_trie.h"
#include "slm/model.h"

namespace rock::slm {

/** PPM model (escape methods A, C, or D). */
class PpmModel final : public LanguageModel {
  public:
    PpmModel(int alphabet_size, int depth, bool exclusion,
             EscapeMethod escape = EscapeMethod::C)
        : trie_(depth), alphabet_size_(alphabet_size),
          exclusion_(exclusion), escape_(escape) {}

    void train(const std::vector<int>& seq) override;
    double prob(int symbol,
                const std::vector<int>& context) const override;
    /** Build the per-context probability vectors (idempotent). */
    void finalize() override;
    int alphabet_size() const override { return alphabet_size_; }

    const ContextTrie& trie() const { return trie_; }

    /** Replace the trained trie (snapshot restore). The depth must
     *  match the constructed depth; the caller re-finalizes. */
    void adopt_trie(ContextTrie trie);

  private:
    /**
     * The general evaluator: handles exclusion and un-finalized
     * models. Identical arithmetic to the fast path (and to the
     * original pointer implementation).
     */
    double general_prob(int symbol,
                        const std::vector<int>& context) const;

    ContextTrie trie_;
    int alphabet_size_;
    bool exclusion_;
    EscapeMethod escape_;

    // ---- finalize() products (valid while finalized_) -----------------
    /** One conditional probability per (node, successor) entry,
     *  aligned with ContextTrie::counts(node) via prob_offset_. */
    std::vector<double> prob_vals_;
    /** Per node: first index into prob_vals_. */
    std::vector<std::uint32_t> prob_offset_;
    /** Per node: escape probability (0.0 when the context covers the
     *  whole alphabet). */
    std::vector<double> escape_p_;
    bool finalized_ = false;
};

} // namespace rock::slm

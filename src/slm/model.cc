#include "slm/model.h"

#include <cmath>

#include "obs/metrics.h"
#include "slm/katz.h"
#include "slm/ngram.h"
#include "slm/ppm.h"
#include "support/error.h"

namespace rock::slm {

double
LanguageModel::sequence_log_prob(const std::vector<int>& seq) const
{
    double log_p = 0.0;
    std::vector<int> context;
    context.reserve(seq.size());
    for (int symbol : seq) {
        double p = prob(symbol, context);
        ROCK_ASSERT(p > 0.0, "model returned non-positive probability");
        log_p += std::log(p);
        context.push_back(symbol);
    }
    return log_p;
}

double
LanguageModel::sequence_prob(const std::vector<int>& seq) const
{
    return std::exp(sequence_log_prob(seq));
}

std::unique_ptr<LanguageModel>
make_model(const ModelConfig& config, int alphabet_size)
{
    support::check(alphabet_size > 0,
                   "model requires a non-empty alphabet");
    support::check(config.depth >= 0, "model depth must be >= 0");
    switch (config.kind) {
      case ModelKind::PpmC:
        return std::make_unique<PpmModel>(alphabet_size, config.depth,
                                          config.exclusion,
                                          config.escape);
      case ModelKind::Katz:
        return std::make_unique<KatzModel>(alphabet_size, config.depth,
                                           config.katz_threshold);
      case ModelKind::NGram:
        return std::make_unique<NGramModel>(
            alphabet_size, config.depth, config.laplace_alpha);
    }
    support::panic("unknown model kind");
}

std::unique_ptr<LanguageModel>
train_model(const ModelConfig& config, int alphabet_size,
            const std::vector<std::vector<int>>& sequences)
{
    auto model = make_model(config, alphabet_size);
    for (const auto& seq : sequences)
        model->train(seq);
    model->finalize();
    record_training_metrics(*model, sequences);
    return model;
}

void
record_training_metrics(const LanguageModel& model,
                        const std::vector<std::vector<int>>& sequences)
{
    if (!obs::metrics_enabled())
        return;
    std::uint64_t symbols = 0;
    for (const auto& seq : sequences)
        symbols += seq.size();
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& trained = reg.counter("slm.models_trained");
    static obs::Counter& seqs = reg.counter("slm.training_sequences");
    static obs::Counter& syms = reg.counter("slm.training_symbols");
    trained.add();
    seqs.add(sequences.size());
    syms.add(symbols);
    if (const auto* ppm = dynamic_cast<const PpmModel*>(&model)) {
        static obs::Counter& nodes = reg.counter("slm.trie_nodes");
        nodes.add(ppm->trie().node_count());
    }
}

} // namespace rock::slm

#include "slm/ngram.h"

#include "support/error.h"

namespace rock::slm {

void
NGramModel::train(const std::vector<int>& seq)
{
    for (int symbol : seq) {
        ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                    "symbol outside alphabet");
    }
    trie_.add_sequence(seq);
}

void
NGramModel::adopt_trie(ContextTrie trie)
{
    ROCK_ASSERT(trie.depth() == trie_.depth(),
                "trie snapshot depth mismatch");
    trie_ = std::move(trie);
}

double
NGramModel::prob(int symbol, const std::vector<int>& context) const
{
    ROCK_ASSERT(symbol >= 0 && symbol < alphabet_size_,
                "symbol outside alphabet");
    std::vector<ContextTrie::NodeId> chain;
    trie_.context_chain(context, chain);
    ContextTrie::NodeId node = chain.back();
    long count = trie_.count_of(node, symbol);
    return (static_cast<double>(count) + alpha_) /
           (static_cast<double>(trie_.total(node)) +
            alpha_ * static_cast<double>(alphabet_size_));
}

} // namespace rock::slm

#include "slm/snapshot.h"

#include <utility>
#include <vector>

#include "slm/context_trie.h"
#include "slm/katz.h"
#include "slm/ngram.h"
#include "slm/ppm.h"
#include "support/error.h"

namespace rock::slm {

namespace {

const ContextTrie&
trie_of(const LanguageModel& model)
{
    if (const auto* ppm = dynamic_cast<const PpmModel*>(&model))
        return ppm->trie();
    if (const auto* katz = dynamic_cast<const KatzModel*>(&model))
        return katz->trie();
    if (const auto* ngram = dynamic_cast<const NGramModel*>(&model))
        return ngram->trie();
    support::panic("snapshot_model: unknown model family");
}

} // namespace

void
snapshot_model(const LanguageModel& model, cache::ByteWriter& out)
{
    const ContextTrie& trie = trie_of(model);
    const std::size_t n = trie.node_count();
    out.i32(trie.depth());
    out.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto node = static_cast<ContextTrie::NodeId>(i);
        const auto& counts = trie.counts(node);
        out.u32(static_cast<std::uint32_t>(counts.size()));
        for (const auto& [symbol, count] : counts) {
            out.i32(symbol);
            out.i32(count);
        }
        const auto& children = trie.children_of(node);
        out.u32(static_cast<std::uint32_t>(children.size()));
        for (const auto& [symbol, kid] : children) {
            out.i32(symbol);
            out.i32(kid);
        }
        out.i64(trie.total(node));
    }
}

std::unique_ptr<LanguageModel>
restore_model(const ModelConfig& config, int alphabet_size,
              cache::ByteReader& in)
{
    int depth = in.i32();
    std::uint64_t n = in.u64();
    if (!in.ok() || depth != config.depth || n == 0)
        return nullptr;
    // Every node costs at least 9 payload bytes; reject fabricated
    // counts before any allocation sized from them.
    if (n > in.remaining())
        return nullptr;

    std::vector<std::vector<std::pair<int, int>>> counts(
        static_cast<std::size_t>(n));
    std::vector<std::vector<std::pair<int, ContextTrie::NodeId>>>
        children(static_cast<std::size_t>(n));
    std::vector<long> totals(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t num_counts = in.u32();
        if (!in.ok() || num_counts > in.remaining())
            return nullptr;
        counts[i].reserve(num_counts);
        for (std::uint32_t k = 0; k < num_counts; ++k) {
            int symbol = in.i32();
            int count = in.i32();
            if (symbol < 0 || symbol >= alphabet_size || count <= 0)
                return nullptr;
            counts[i].emplace_back(symbol, count);
        }
        std::uint32_t num_children = in.u32();
        if (!in.ok() || num_children > in.remaining())
            return nullptr;
        children[i].reserve(num_children);
        for (std::uint32_t k = 0; k < num_children; ++k) {
            int symbol = in.i32();
            int kid = in.i32();
            if (symbol < 0 || symbol >= alphabet_size)
                return nullptr;
            children[i].emplace_back(
                symbol, static_cast<ContextTrie::NodeId>(kid));
        }
        std::int64_t total = in.i64();
        if (total < 0)
            return nullptr;
        totals[i] = static_cast<long>(total);
    }
    if (!in.at_end())
        return nullptr;

    ContextTrie trie(depth);
    if (!trie.restore(std::move(counts), std::move(children),
                      std::move(totals)))
        return nullptr;

    auto model = make_model(config, alphabet_size);
    if (auto* ppm = dynamic_cast<PpmModel*>(model.get()))
        ppm->adopt_trie(std::move(trie));
    else if (auto* katz = dynamic_cast<KatzModel*>(model.get()))
        katz->adopt_trie(std::move(trie));
    else if (auto* ngram = dynamic_cast<NGramModel*>(model.get()))
        ngram->adopt_trie(std::move(trie));
    else
        return nullptr;
    model->finalize();
    return model;
}

} // namespace rock::slm

/**
 * @file
 * Fixed-order Laplace-smoothed n-gram model (baseline).
 *
 * Uses the longest stored context up to the configured depth and
 * additive smoothing: P = (c + alpha) / (n + alpha * |Sigma|).
 */
#pragma once

#include "slm/context_trie.h"
#include "slm/model.h"

namespace rock::slm {

/** Laplace-smoothed fixed-order n-gram. */
class NGramModel final : public LanguageModel {
  public:
    NGramModel(int alphabet_size, int depth, double alpha)
        : trie_(depth), alphabet_size_(alphabet_size), alpha_(alpha) {}

    void train(const std::vector<int>& seq) override;
    double prob(int symbol,
                const std::vector<int>& context) const override;
    int alphabet_size() const override { return alphabet_size_; }

    const ContextTrie& trie() const { return trie_; }

    /** Replace the trained trie (snapshot restore). The depth must
     *  match the constructed depth. */
    void adopt_trie(ContextTrie trie);

  private:
    ContextTrie trie_;
    int alphabet_size_;
    double alpha_;
};

} // namespace rock::slm

/**
 * @file
 * Statistical language models over tracelet symbols.
 *
 * Paper Section 3.1: a model Pr trained on sequences over a finite
 * alphabet assigns Pr(sigma | s) to any symbol given a past, and
 * Pr(x_1..x_T) = prod_i Pr(x_i | x_1..x_{i-1}).
 *
 * Three interchangeable families are provided:
 *  - PPM-C variable-order n-gram with escape/backoff (the paper's
 *    choice),
 *  - Katz back-off with Good-Turing discounting (the paper's named
 *    alternative),
 *  - fixed-order Laplace-smoothed n-gram (baseline).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rock::slm {

/** Model families. */
enum class ModelKind { PpmC, Katz, NGram };

/**
 * PPM escape estimation methods. The paper uses method C; A and D
 * are the classic alternatives (Cleary/Witten 1984, Howard 1993):
 *  - A: escape count 1            -> P(esc) = 1/(n+1)
 *  - C: escape count q (distinct) -> P(esc) = q/(n+q)
 *  - D: discount 1/2 per distinct -> P(esc) = q/(2n)
 */
enum class EscapeMethod { A, C, D };

/** Configuration shared by all model families. */
struct ModelConfig {
    ModelKind kind = ModelKind::PpmC;
    /** Maximum context length D (the paper's figures use depth 2). */
    int depth = 2;
    /** PPM: escape estimation method (paper: C). */
    EscapeMethod escape = EscapeMethod::C;
    /** PPM: apply exclusions when backing off. */
    bool exclusion = false;
    /** NGram: Laplace smoothing constant. */
    double laplace_alpha = 1.0;
    /** Katz: counts below this threshold are Good-Turing discounted. */
    int katz_threshold = 5;
};

/** Common interface of all trained sequence models. */
class LanguageModel {
  public:
    virtual ~LanguageModel() = default;

    /** Add one training sequence (one tracelet). */
    virtual void train(const std::vector<int>& seq) = 0;

    /**
     * Conditional probability P(symbol | context). The model uses at
     * most its configured depth of trailing context. Always positive.
     */
    virtual double prob(int symbol,
                        const std::vector<int>& context) const = 0;

    /**
     * Freeze the model after training: precompute whatever the
     * family's query fast path needs (PPM probability vectors, Katz
     * count-of-counts). Idempotent; never changes any probability.
     * train_model() calls this, so a finalized model's prob() is pure
     * and safe to share across threads. Training again un-finalizes.
     */
    virtual void finalize() {}

    /** Alphabet size the model was constructed for. */
    virtual int alphabet_size() const = 0;

    /** Natural log-probability of a whole sequence. */
    double sequence_log_prob(const std::vector<int>& seq) const;

    /** Probability of a whole sequence. */
    double sequence_prob(const std::vector<int>& seq) const;
};

/** Construct an untrained model of the configured family. */
std::unique_ptr<LanguageModel> make_model(const ModelConfig& config,
                                          int alphabet_size);

/** Convenience: construct and train on @p sequences. */
std::unique_ptr<LanguageModel>
train_model(const ModelConfig& config, int alphabet_size,
            const std::vector<std::vector<int>>& sequences);

/**
 * Bump the `slm.*` training counters exactly as train_model() would
 * have for (@p model, @p sequences). train_model() calls this itself;
 * the warm-cache path (src/cache/) calls it after restoring a trained
 * model from a snapshot, so replayed counters match a cold run bit
 * for bit.
 */
void record_training_metrics(
    const LanguageModel& model,
    const std::vector<std::vector<int>>& sequences);

/**
 * Monotone per-thread total of PPM escapes taken on the calling
 * thread. Mirrors the `slm.escapes` counter but is bumped even when
 * metrics are disabled, so cached divergence artifacts carry the same
 * replay data regardless of the producer's metrics setting.
 */
std::uint64_t thread_escape_tally();

} // namespace rock::slm

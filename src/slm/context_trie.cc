#include "slm/context_trie.h"

namespace rock::slm {

void
ContextTrie::add_sequence(const std::vector<int>& seq)
{
    for (std::size_t i = 0; i < seq.size(); ++i) {
        int symbol = seq[i];
        // Update the root (order 0) and every context of length
        // 1..depth ending just before position i.
        Node* node = &root_;
        node->counts[symbol] += 1;
        node->total += 1;
        for (int k = 1; k <= depth_ && k <= static_cast<int>(i); ++k) {
            int ctx_symbol = seq[i - static_cast<std::size_t>(k)];
            auto& child = node->children[ctx_symbol];
            if (!child)
                child = std::make_unique<Node>();
            node = child.get();
            node->counts[symbol] += 1;
            node->total += 1;
        }
    }
}

void
ContextTrie::context_chain(const std::vector<int>& context,
                           std::vector<const Node*>& chain) const
{
    chain.push_back(&root_);
    const Node* node = &root_;
    int limit = std::min<int>(depth_, static_cast<int>(context.size()));
    for (int k = 1; k <= limit; ++k) {
        int ctx_symbol = context[context.size() - static_cast<std::size_t>(k)];
        auto it = node->children.find(ctx_symbol);
        if (it == node->children.end())
            break;
        node = it->second.get();
        chain.push_back(node);
    }
}

std::vector<std::map<int, long>>
ContextTrie::count_of_counts() const
{
    std::vector<std::map<int, long>> result(
        static_cast<std::size_t>(depth_) + 1);
    auto walk = [&](auto&& self, const Node& node, int order) -> void {
        for (const auto& [symbol, count] : node.counts) {
            (void)symbol;
            result[static_cast<std::size_t>(order)][count] += 1;
        }
        if (order < depth_) {
            for (const auto& [symbol, child] : node.children) {
                (void)symbol;
                self(self, *child, order + 1);
            }
        }
    };
    walk(walk, root_, 0);
    return result;
}

std::size_t
ContextTrie::node_count() const
{
    auto walk = [](auto&& self, const Node& node) -> std::size_t {
        std::size_t total = 1;
        for (const auto& [symbol, child] : node.children) {
            (void)symbol;
            total += self(self, *child);
        }
        return total;
    };
    return walk(walk, root_);
}

} // namespace rock::slm

#include "slm/context_trie.h"

#include <algorithm>
#include <map>

namespace rock::slm {

namespace {

/** Lower bound over a sorted (key, value) small vector. */
template <typename Vec>
auto
find_key(Vec& vec, int key)
{
    return std::lower_bound(
        vec.begin(), vec.end(), key,
        [](const auto& entry, int k) { return entry.first < k; });
}

} // namespace

int&
ContextTrie::count_slot(NodeId node, int symbol)
{
    auto& counts = nodes_[static_cast<std::size_t>(node)].counts;
    auto it = find_key(counts, symbol);
    if (it == counts.end() || it->first != symbol)
        it = counts.insert(it, {symbol, 0});
    return it->second;
}

ContextTrie::NodeId
ContextTrie::child_or_create(NodeId node, int symbol)
{
    // Note: taking the children reference *after* any arena growth --
    // allocating the child first would invalidate it.
    {
        auto& children =
            nodes_[static_cast<std::size_t>(node)].children;
        auto it = find_key(children, symbol);
        if (it != children.end() && it->first == symbol)
            return it->second;
    }
    NodeId fresh = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    totals_.push_back(0);
    auto& children = nodes_[static_cast<std::size_t>(node)].children;
    auto it = find_key(children, symbol);
    children.insert(it, {symbol, fresh});
    return fresh;
}

void
ContextTrie::add_sequence(const std::vector<int>& seq)
{
    for (std::size_t i = 0; i < seq.size(); ++i) {
        int symbol = seq[i];
        // Update the root (order 0) and every context of length
        // 1..depth ending just before position i.
        NodeId node = kRoot;
        count_slot(node, symbol) += 1;
        totals_[static_cast<std::size_t>(node)] += 1;
        for (int k = 1; k <= depth_ && k <= static_cast<int>(i); ++k) {
            int ctx_symbol = seq[i - static_cast<std::size_t>(k)];
            node = child_or_create(node, ctx_symbol);
            count_slot(node, symbol) += 1;
            totals_[static_cast<std::size_t>(node)] += 1;
        }
    }
}

void
ContextTrie::context_chain(const std::vector<int>& context,
                           std::vector<NodeId>& chain) const
{
    chain.push_back(kRoot);
    NodeId node = kRoot;
    int limit = std::min<int>(depth_, static_cast<int>(context.size()));
    for (int k = 1; k <= limit; ++k) {
        int ctx_symbol =
            context[context.size() - static_cast<std::size_t>(k)];
        NodeId next = child(node, ctx_symbol);
        if (next < 0)
            break;
        node = next;
        chain.push_back(node);
    }
}

int
ContextTrie::count_of(NodeId node, int symbol) const
{
    const auto& counts = nodes_[static_cast<std::size_t>(node)].counts;
    auto it = find_key(counts, symbol);
    if (it == counts.end() || it->first != symbol)
        return 0;
    return it->second;
}

ContextTrie::NodeId
ContextTrie::child(NodeId node, int symbol) const
{
    const auto& children =
        nodes_[static_cast<std::size_t>(node)].children;
    auto it = find_key(children, symbol);
    if (it == children.end() || it->first != symbol)
        return -1;
    return it->second;
}

bool
ContextTrie::restore(
    std::vector<std::vector<std::pair<int, int>>> counts,
    std::vector<std::vector<std::pair<int, NodeId>>> children,
    std::vector<long> totals)
{
    nodes_.clear();
    totals_.clear();
    nodes_.emplace_back();
    totals_.push_back(0);

    const std::size_t n = counts.size();
    if (n == 0 || children.size() != n || totals.size() != n)
        return false;
    for (const auto& kids : children) {
        for (const auto& [symbol, kid] : kids) {
            (void)symbol;
            if (kid <= kRoot || static_cast<std::size_t>(kid) >= n)
                return false;
        }
    }

    nodes_.clear();
    nodes_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes_[i].counts = std::move(counts[i]);
        nodes_[i].children = std::move(children[i]);
    }
    totals_ = std::move(totals);
    return true;
}

std::vector<std::vector<std::pair<int, long>>>
ContextTrie::count_of_counts() const
{
    std::vector<std::map<int, long>> acc(
        static_cast<std::size_t>(depth_) + 1);
    auto walk = [&](auto&& self, NodeId node, int order) -> void {
        for (const auto& [symbol, count] :
             nodes_[static_cast<std::size_t>(node)].counts) {
            (void)symbol;
            acc[static_cast<std::size_t>(order)][count] += 1;
        }
        if (order < depth_) {
            for (const auto& [symbol, kid] :
                 nodes_[static_cast<std::size_t>(node)].children) {
                (void)symbol;
                self(self, kid, order + 1);
            }
        }
    };
    walk(walk, kRoot, 0);

    std::vector<std::vector<std::pair<int, long>>> result;
    result.reserve(acc.size());
    for (const auto& table : acc)
        result.emplace_back(table.begin(), table.end());
    return result;
}

} // namespace rock::slm

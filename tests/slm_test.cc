/**
 * @file
 * Unit and property tests for the statistical language models.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "support/error.h"
#include "slm/katz.h"
#include "slm/model.h"
#include "slm/ngram.h"
#include "slm/ppm.h"
#include "support/rng.h"

namespace {

using namespace rock::slm;

// ---------------------------------------------------------------------
// Context trie
// ---------------------------------------------------------------------

TEST(ContextTrie, CountsOrderZero)
{
    ContextTrie trie(2);
    trie.add_sequence({0, 1, 0});
    EXPECT_EQ(trie.count_of(ContextTrie::kRoot, 0), 2);
    EXPECT_EQ(trie.count_of(ContextTrie::kRoot, 1), 1);
    EXPECT_EQ(trie.total(ContextTrie::kRoot), 3);
}

TEST(ContextTrie, CountsDeeperOrders)
{
    ContextTrie trie(2);
    trie.add_sequence({0, 1, 0, 1});
    // Context "0": successors {1:2}.
    std::vector<ContextTrie::NodeId> chain;
    trie.context_chain({0}, chain);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(trie.count_of(chain[1], 1), 2);
    // Context "0 1" (most recent last): successor {0:1}.
    chain.clear();
    trie.context_chain({0, 1}, chain);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(trie.count_of(chain[2], 0), 1);
}

TEST(ContextTrie, ChainTruncatesAtDepth)
{
    ContextTrie trie(1);
    trie.add_sequence({0, 1, 2});
    std::vector<ContextTrie::NodeId> chain;
    trie.context_chain({0, 1}, chain);
    EXPECT_LE(chain.size(), 2u); // root + at most depth 1
}

TEST(ContextTrie, CountOfCountsPerOrder)
{
    ContextTrie trie(1);
    trie.add_sequence({0, 0, 1});
    auto coc = trie.count_of_counts();
    ASSERT_EQ(coc.size(), 2u);
    // Order 0: symbol 0 twice, symbol 1 once -> N_2 = 1, N_1 = 1,
    // sorted by count ascending.
    ASSERT_EQ(coc[0].size(), 2u);
    EXPECT_EQ(coc[0][0], (std::pair<int, long>{1, 1}));
    EXPECT_EQ(coc[0][1], (std::pair<int, long>{2, 1}));
}

TEST(ContextTrie, CountsVectorSortedBySymbol)
{
    ContextTrie trie(2);
    trie.add_sequence({3, 1, 2, 1, 0});
    const auto& counts = trie.counts(ContextTrie::kRoot);
    ASSERT_FALSE(counts.empty());
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_LT(counts[i - 1].first, counts[i].first);
    EXPECT_EQ(trie.distinct(ContextTrie::kRoot), counts.size());
}

// ---------------------------------------------------------------------
// PPM-C hand-computed probabilities (paper Section 3.1 example)
// ---------------------------------------------------------------------

TEST(Ppm, HandComputedEscapeChain)
{
    // Train on "aa" and "ab" over alphabet {a, b, c}.
    PpmModel model(3, 2, /*exclusion=*/false);
    model.train({0, 0});
    model.train({0, 1});

    // Root counts: a:2 in first positions + context updates...
    // At the empty context, counts are {a:3, b:1}: total 4, distinct 2.
    // PPM-C: P(a|e) = 3/6, P(b|e) = 1/6, escape = 2/6.
    EXPECT_NEAR(model.prob(0, {}), 3.0 / 6.0, 1e-12);
    EXPECT_NEAR(model.prob(1, {}), 1.0 / 6.0, 1e-12);
    // c unseen: escape to uniform: 2/6 * 1/3.
    EXPECT_NEAR(model.prob(2, {}), 2.0 / 6.0 / 3.0, 1e-12);

    // Context "a": counts {a:1, b:1}: P(a|a) = 1/4.
    EXPECT_NEAR(model.prob(0, {0}), 1.0 / 4.0, 1e-12);
    // c after a: escape(1/2) * escape(2/6) * uniform(1/3).
    EXPECT_NEAR(model.prob(2, {0}),
                0.5 * (2.0 / 6.0) * (1.0 / 3.0), 1e-12);
}

TEST(Ppm, UnseenContextFallsThrough)
{
    PpmModel model(2, 2, false);
    model.train({0, 0});
    // Context "1" never seen: the chain stops at the root.
    EXPECT_NEAR(model.prob(0, {1}), model.prob(0, {}), 1e-12);
}

TEST(Ppm, UntrainedModelIsUniform)
{
    PpmModel model(4, 2, false);
    for (int s = 0; s < 4; ++s)
        EXPECT_NEAR(model.prob(s, {}), 0.25, 1e-12);
}

TEST(Ppm, DeeperContextSharpensPrediction)
{
    PpmModel model(3, 2, false);
    for (int i = 0; i < 8; ++i)
        model.train({0, 1, 2});
    // After 0,1 the model should strongly predict 2.
    EXPECT_GT(model.prob(2, {0, 1}), 0.8);
    EXPECT_GT(model.prob(2, {0, 1}), model.prob(2, {}));
}

TEST(Ppm, SequenceProbIsChainProduct)
{
    PpmModel model(3, 2, false);
    model.train({0, 1, 2});
    double manual = model.prob(0, {}) * model.prob(1, {0}) *
                    model.prob(2, {0, 1});
    EXPECT_NEAR(model.sequence_prob({0, 1, 2}), manual, 1e-12);
    EXPECT_NEAR(model.sequence_log_prob({0, 1, 2}), std::log(manual),
                1e-12);
}

// ---------------------------------------------------------------------
// Property sweeps over random training data
// ---------------------------------------------------------------------

struct SweepParam {
    ModelKind kind;
    int depth;
    bool exclusion;
    std::uint64_t seed;
};

class ModelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ModelSweep, ConditionalDistributionsNormalized)
{
    const SweepParam param = GetParam();
    const int alphabet = 5;
    ModelConfig config;
    config.kind = param.kind;
    config.depth = param.depth;
    config.exclusion = param.exclusion;
    auto model = make_model(config, alphabet);

    rock::support::Rng rng(param.seed);
    for (int seq = 0; seq < 12; ++seq) {
        std::vector<int> data;
        std::size_t len = 1 + rng.index(9);
        for (std::size_t i = 0; i < len; ++i)
            data.push_back(static_cast<int>(rng.index(alphabet)));
        model->train(data);
    }

    // Check sum over the alphabet for assorted contexts.
    std::vector<std::vector<int>> contexts{
        {}, {0}, {1, 2}, {4, 4}, {0, 1, 2, 3}};
    for (const auto& ctx : contexts) {
        double total = 0.0;
        for (int s = 0; s < alphabet; ++s) {
            double p = model->prob(s, ctx);
            EXPECT_GT(p, 0.0);
            EXPECT_LE(p, 1.0 + 1e-9);
            total += p;
        }
        // All families are sub-normalized or exactly normalized;
        // exclusion-PPM and the n-gram are exact.
        EXPECT_LE(total, 1.0 + 1e-9);
        if ((param.kind == ModelKind::PpmC && param.exclusion) ||
            param.kind == ModelKind::NGram) {
            EXPECT_NEAR(total, 1.0, 1e-9);
        } else {
            EXPECT_GT(total, 0.3);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ModelSweep,
    ::testing::Values(
        SweepParam{ModelKind::PpmC, 2, false, 1},
        SweepParam{ModelKind::PpmC, 2, true, 2},
        SweepParam{ModelKind::PpmC, 3, false, 3},
        SweepParam{ModelKind::PpmC, 3, true, 4},
        SweepParam{ModelKind::PpmC, 1, false, 5},
        SweepParam{ModelKind::Katz, 2, false, 6},
        SweepParam{ModelKind::Katz, 3, false, 7},
        SweepParam{ModelKind::NGram, 2, false, 8},
        SweepParam{ModelKind::NGram, 1, false, 9},
        SweepParam{ModelKind::NGram, 3, false, 10}));

TEST(Katz, SeenCountsAreDiscounted)
{
    KatzModel model(3, 1, /*threshold=*/5);
    // Many singleton events so Good-Turing has mass to shift.
    model.train({0, 1});
    model.train({0, 2});
    model.train({0, 1});
    // P(unseen successor | 0) must be positive.
    EXPECT_GT(model.prob(0, {0}), 0.0);
    double total = 0.0;
    for (int s = 0; s < 3; ++s)
        total += model.prob(s, {0});
    EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(NGram, LaplaceExactValues)
{
    NGramModel model(2, 1, /*alpha=*/1.0);
    model.train({0, 0, 1});
    // Context "0": counts {0:1, 1:1}; P(0|0) = (1+1)/(2+2) = 0.5.
    EXPECT_NEAR(model.prob(0, {0}), 0.5, 1e-12);
    // Root: counts {0:2, 1:1}; P(1|e) = (1+1)/(3+2) = 0.4.
    EXPECT_NEAR(model.prob(1, {}), 0.4, 1e-12);
}

TEST(Factory, RejectsBadConfig)
{
    ModelConfig config;
    EXPECT_THROW(make_model(config, 0), rock::support::FatalError);
    config.depth = -1;
    EXPECT_THROW(make_model(config, 3), rock::support::FatalError);
}

TEST(Factory, TrainModelConvenience)
{
    ModelConfig config;
    auto model = train_model(config, 3, {{0, 1}, {0, 1}, {0, 2}});
    // 1 followed 0 twice, 2 once: the model must rank them so.
    EXPECT_GT(model->prob(1, {0}), model->prob(2, {0}));
}

TEST(Models, TrainRejectsForeignSymbols)
{
    PpmModel model(2, 2, false);
    EXPECT_THROW(model.train({0, 5}), rock::support::PanicError);
    EXPECT_THROW(model.prob(9, {}), rock::support::PanicError);
}

// ---------------------------------------------------------------------
// PPM escape methods A / C / D
// ---------------------------------------------------------------------

TEST(PpmEscape, MethodAHandValues)
{
    // Train "aa","ab": root counts {a:3, b:1}, n=4.
    // Method A: P(a|e) = 3/5, P(esc) = 1/5.
    PpmModel model(3, 2, false, EscapeMethod::A);
    model.train({0, 0});
    model.train({0, 1});
    EXPECT_NEAR(model.prob(0, {}), 3.0 / 5.0, 1e-12);
    EXPECT_NEAR(model.prob(2, {}), (1.0 / 5.0) / 3.0, 1e-12);
}

TEST(PpmEscape, MethodDHandValues)
{
    // Method D: P(a|e) = (2*3-1)/(2*4) = 5/8; P(esc) = 2/8.
    PpmModel model(3, 2, false, EscapeMethod::D);
    model.train({0, 0});
    model.train({0, 1});
    EXPECT_NEAR(model.prob(0, {}), 5.0 / 8.0, 1e-12);
    EXPECT_NEAR(model.prob(1, {}), 1.0 / 8.0, 1e-12);
    EXPECT_NEAR(model.prob(2, {}), (2.0 / 8.0) / 3.0, 1e-12);
}

class EscapeSweep : public ::testing::TestWithParam<EscapeMethod> {};

TEST_P(EscapeSweep, DistributionsStayProper)
{
    rock::support::Rng rng(31);
    PpmModel model(5, 2, /*exclusion=*/true, GetParam());
    for (int s = 0; s < 10; ++s) {
        std::vector<int> seq;
        for (std::size_t i = 0, len = 1 + rng.index(8); i < len; ++i)
            seq.push_back(static_cast<int>(rng.index(5)));
        model.train(seq);
    }
    for (const auto& ctx : std::vector<std::vector<int>>{
             {}, {0}, {3, 1}, {2, 2, 2}}) {
        double total = 0.0;
        for (int s = 0; s < 5; ++s) {
            double p = model.prob(s, ctx);
            EXPECT_GT(p, 0.0);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Methods, EscapeSweep,
                         ::testing::Values(EscapeMethod::A,
                                           EscapeMethod::C,
                                           EscapeMethod::D));

} // namespace

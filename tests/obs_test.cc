/**
 * @file
 * The obs layer: metrics registry, span tracing, JSON round-trip, and
 * the rockstat regression-diff core.
 *
 * The suite shares the process-global Registry, so every test that
 * reads totals resets it first; gtest runs tests in one thread, so no
 * cross-test interleaving can corrupt a snapshot.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "corpus/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "rock/pipeline.h"
#include "support/parallel.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

// ---- metrics registry ------------------------------------------------

TEST(Metrics, CounterSumExactUnderParallelFor)
{
    obs::Registry::global().reset();
    obs::Counter& c =
        obs::Registry::global().counter("test.parallel_sum");
    support::ThreadPool pool(4);
    constexpr std::size_t kItems = 20000;
    pool.parallel_for(kItems, [&](std::size_t i) {
        c.add();
        if (i % 2 == 0)
            c.add(2);
    });
    EXPECT_EQ(c.value(), kItems + 2 * (kItems / 2));
}

TEST(Metrics, RegistryReturnsSameInstancePerName)
{
    obs::Counter& a = obs::Registry::global().counter("test.same");
    obs::Counter& b = obs::Registry::global().counter("test.same");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, CrossKindNameCollisionThrows)
{
    obs::Registry::global().counter("test.collision");
    EXPECT_THROW(obs::Registry::global().gauge("test.collision"),
                 std::runtime_error);
    EXPECT_THROW(obs::Registry::global().histogram("test.collision"),
                 std::runtime_error);
}

TEST(Metrics, DisabledRecordingIsDropped)
{
    obs::Registry::global().reset();
    obs::Counter& c = obs::Registry::global().counter("test.disabled");
    obs::set_metrics_enabled(false);
    c.add(5);
    obs::set_metrics_enabled(true);
    EXPECT_EQ(c.value(), 0u);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    obs::Registry::global().reset();
    obs::Histogram& h = obs::Registry::global().histogram(
        "test.hist", {1.0, 10.0, 100.0});
    // A value equal to a bound lands in that bound's bucket (first
    // bucket with value <= bound); above the last bound -> overflow.
    h.observe(0.5);   // bucket 0
    h.observe(1.0);   // bucket 0 (boundary inclusive)
    h.observe(1.001); // bucket 1
    h.observe(10.0);  // bucket 1
    h.observe(99.9);  // bucket 2
    h.observe(100.1); // overflow
    std::vector<std::uint64_t> expected = {2, 2, 1, 1};
    EXPECT_EQ(h.counts(), expected);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 100.1,
                1e-9);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds)
{
    EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::runtime_error);
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::runtime_error);
}

TEST(Metrics, ResetZeroesInPlaceAndKeepsReferencesValid)
{
    obs::Counter& c = obs::Registry::global().counter("test.reset");
    c.add(7);
    obs::Registry::global().reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1); // the same reference keeps recording
    EXPECT_EQ(c.value(), 1u);
}

// ---- span tracing ----------------------------------------------------

TEST(Trace, SpanNestingAndOrdering)
{
    obs::Registry::global().reset();
    {
        obs::Span outer("test.outer");
        {
            obs::Span inner("test.inner");
        }
        obs::Span sibling("test.sibling");
        sibling.end();
    }
    auto log = obs::span_log();
    ASSERT_EQ(log.size(), 3u);
    // Open order: parents precede children; ids match positions.
    EXPECT_EQ(log[0].name, "test.outer");
    EXPECT_EQ(log[0].id, 0);
    EXPECT_EQ(log[0].parent, -1);
    EXPECT_EQ(log[1].name, "test.inner");
    EXPECT_EQ(log[1].parent, 0);
    EXPECT_EQ(log[2].name, "test.sibling");
    EXPECT_EQ(log[2].parent, 0);
    // The parent's wall time covers both children.
    EXPECT_GE(log[0].wall_ms, log[1].wall_ms);
    EXPECT_GE(log[0].wall_ms, log[2].wall_ms);
}

TEST(Trace, EndIsIdempotentAndExposesWallMs)
{
    obs::Registry::global().reset();
    obs::Span span("test.idempotent");
    span.end();
    double first = span.wall_ms();
    span.end();
    EXPECT_EQ(span.wall_ms(), first);
    EXPECT_EQ(obs::span_log().size(), 1u);
}

TEST(Trace, DisabledSpansRecordNothing)
{
    obs::Registry::global().reset();
    obs::set_metrics_enabled(false);
    {
        obs::Span span("test.invisible");
    }
    obs::set_metrics_enabled(true);
    EXPECT_TRUE(obs::span_log().empty());
}

// ---- JSON + report ---------------------------------------------------

TEST(Report, JsonRoundTripIsExact)
{
    obs::Registry::global().reset();
    obs::Registry::global().counter("test.rt_counter").add(42);
    obs::Registry::global().gauge("test.rt_gauge").set(2.5);
    obs::Registry::global()
        .histogram("test.rt_hist", {1.0, 5.0})
        .observe(3.25);
    {
        obs::Span span("test.rt_span");
    }
    obs::MetricsReport report = obs::MetricsReport::capture();
    obs::MetricsReport parsed =
        obs::MetricsReport::from_json(report.to_json());
    EXPECT_EQ(parsed, report);
    // Canonical form: serializing twice is byte-identical.
    EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(Report, FromJsonRejectsWrongSchemaAndGarbage)
{
    EXPECT_THROW(obs::MetricsReport::from_json("{}"),
                 std::runtime_error);
    EXPECT_THROW(obs::MetricsReport::from_json("not json"),
                 std::runtime_error);
    EXPECT_THROW(obs::MetricsReport::from_json(
                     "{\"schema\":\"rock-metrics-v0\"}"),
                 std::runtime_error);
}

TEST(Json, ParserHandlesEscapesAndNumbers)
{
    obs::Json v = obs::Json::parse(
        "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":-1.5e2,\"t\":true,"
        "\"z\":null,\"a\":[1,2]}");
    EXPECT_EQ(v.find("s")->string, "a\"b\\c\n");
    EXPECT_EQ(v.find("n")->number, -150.0);
    EXPECT_TRUE(v.find("t")->boolean);
    EXPECT_EQ(v.find("z")->kind, obs::Json::Kind::Null);
    EXPECT_EQ(v.find("a")->array.size(), 2u);
    EXPECT_THROW(obs::Json::parse("{\"unterminated\":"),
                 std::runtime_error);
}

// ---- regression diffing (rockstat core) ------------------------------

obs::MetricsReport
small_report()
{
    obs::MetricsReport r;
    r.counters = {{"alpha", 100}, {"beta", 5}};
    obs::SpanRecord span;
    span.name = "stage";
    span.wall_ms = 100.0;
    r.spans.push_back(span);
    return r;
}

TEST(Diff, SelfDiffIsClean)
{
    obs::MetricsReport r = small_report();
    EXPECT_TRUE(obs::diff_reports(r, r).empty());
}

TEST(Diff, DoubledCounterIsARegression)
{
    obs::MetricsReport base = small_report();
    obs::MetricsReport cur = small_report();
    cur.counters["alpha"] = 200;
    auto regs = obs::diff_reports(base, cur);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].metric, "counter:alpha");
    EXPECT_EQ(regs[0].baseline, 100.0);
    EXPECT_EQ(regs[0].current, 200.0);
}

TEST(Diff, CounterToleranceAllowsBoundedDrift)
{
    obs::MetricsReport base = small_report();
    obs::MetricsReport cur = small_report();
    cur.counters["alpha"] = 109;
    obs::DiffOptions options;
    options.counter_rel_tol = 0.10;
    EXPECT_TRUE(obs::diff_reports(base, cur, options).empty());
    cur.counters["alpha"] = 111;
    EXPECT_EQ(obs::diff_reports(base, cur, options).size(), 1u);
}

TEST(Diff, MissingCounterOnEitherSideIsReported)
{
    obs::MetricsReport base = small_report();
    obs::MetricsReport cur = small_report();
    cur.counters.erase("beta");
    cur.counters["gamma"] = 1;
    EXPECT_EQ(obs::diff_reports(base, cur).size(), 2u);
}

TEST(Diff, SpanGateIsOneSidedWithSlack)
{
    obs::MetricsReport base = small_report();
    obs::MetricsReport cur = small_report();
    // Default gate: 25% relative + 5ms slack over a 100ms baseline.
    cur.spans[0].wall_ms = 129.0;
    EXPECT_TRUE(obs::diff_reports(base, cur).empty());
    cur.spans[0].wall_ms = 131.0;
    auto regs = obs::diff_reports(base, cur);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].metric, "span:stage");
    // Getting faster never fails.
    cur.spans[0].wall_ms = 1.0;
    EXPECT_TRUE(obs::diff_reports(base, cur).empty());
    // counters_only skips the timing gate entirely.
    cur.spans[0].wall_ms = 10000.0;
    obs::DiffOptions counters_only;
    counters_only.counters_only = true;
    EXPECT_TRUE(obs::diff_reports(base, cur, counters_only).empty());
}

TEST(Diff, BenchLinesPairByIdentityAndGateTimings)
{
    const std::string base =
        "{\"bench\":\"x\",\"classes\":40,\"threads\":1,"
        "\"total_ms\":100.0,\"identical_to_serial\":true}\n"
        "{\"bench\":\"x\",\"classes\":40,\"threads\":2,"
        "\"total_ms\":60.0,\"identical_to_serial\":true}\n";
    EXPECT_TRUE(obs::diff_bench_lines(base, base).empty());

    // >25%+5ms growth on one paired line.
    const std::string slow =
        "{\"bench\":\"x\",\"classes\":40,\"threads\":1,"
        "\"total_ms\":140.0,\"identical_to_serial\":true}\n"
        "{\"bench\":\"x\",\"classes\":40,\"threads\":2,"
        "\"total_ms\":60.0,\"identical_to_serial\":true}\n";
    EXPECT_EQ(obs::diff_bench_lines(base, slow).size(), 1u);

    // A flipped boolean (determinism check!) always fails.
    const std::string broken =
        "{\"bench\":\"x\",\"classes\":40,\"threads\":1,"
        "\"total_ms\":100.0,\"identical_to_serial\":true}\n"
        "{\"bench\":\"x\",\"classes\":40,\"threads\":2,"
        "\"total_ms\":60.0,\"identical_to_serial\":false}\n";
    EXPECT_EQ(obs::diff_bench_lines(base, broken).size(), 1u);

    // A baseline line with no current partner is reported.
    const std::string missing =
        "{\"bench\":\"x\",\"classes\":40,\"threads\":1,"
        "\"total_ms\":100.0,\"identical_to_serial\":true}\n";
    EXPECT_EQ(obs::diff_bench_lines(base, missing).size(), 1u);
}

// ---- end-to-end: the pipeline under observation ----------------------

core::ReconstructionResult
run_generated(int threads, bool typeinf = true)
{
    corpus::GeneratorSpec spec;
    spec.num_classes = 20;
    spec.num_trees = 2;
    spec.max_depth = 3;
    spec.scenarios_per_class = 2;
    spec.seed = 11;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    core::RockConfig config;
    config.threads = threads;
    config.typeinf = typeinf;
    return core::reconstruct(compiled.image, config);
}

TEST(EndToEnd, ReconstructEmitsMetricsAcrossEveryStage)
{
    obs::Registry::global().reset();
    run_generated(2);
    // On this corpus the solved subtype facts prune every non-forced
    // candidate edge, so the DKL stage legitimately weighs nothing;
    // the baseline configuration keeps the divergence counters
    // exercised (counters accumulate across both runs).
    run_generated(2, /*typeinf=*/false);
    obs::MetricsReport report = obs::MetricsReport::capture();

    // The acceptance bar: >= 15 distinct named metrics spanning all
    // stages of the pipeline.
    EXPECT_GE(report.counters.size(), 15u);
    for (const char* name :
         {"pipeline.runs", "pipeline.types", "verify.functions",
          "analysis.functions_symexec", "analysis.tracelets",
          "structural.feasible_parent_edges", "typeinf.constraints",
          "typeinf.object_vars", "typeinf.subtype_edges",
          "typeinf.edges_pruned", "slm.models_trained",
          "slm.trie_nodes", "slm.escapes", "divergence.pairs",
          "arborescence.families_solved", "threadpool.items"}) {
        EXPECT_TRUE(report.counters.count(name)) << name;
        if (std::string(name) != "verify.diagnostics")
            EXPECT_GT(report.counters[name], 0u) << name;
    }
    // One span per pipeline stage, rooted at pipeline.reconstruct.
    auto totals = report.span_totals();
    for (const char* span :
         {"pipeline.reconstruct", "pipeline.verify",
          "pipeline.analyze", "pipeline.structural",
          "pipeline.typeinf", "pipeline.train", "pipeline.distances",
          "pipeline.arborescence"}) {
        EXPECT_TRUE(totals.count(span)) << span;
    }
}

TEST(EndToEnd, StageTimingMatchesSpanTree)
{
    // StageTiming is deprecated-but-kept: its fields must be copied
    // verbatim from the per-stage spans (one reconstruct per reset ->
    // span totals equal the copied fields exactly).
    obs::Registry::global().reset();
    core::ReconstructionResult result = run_generated(1);
    auto totals = obs::MetricsReport::capture().span_totals();
    EXPECT_EQ(result.timing.verify_ms, totals.at("pipeline.verify"));
    EXPECT_EQ(result.timing.analyze_ms, totals.at("pipeline.analyze"));
    EXPECT_EQ(result.timing.structural_ms,
              totals.at("pipeline.structural"));
    EXPECT_EQ(result.timing.typeinf_ms, totals.at("pipeline.typeinf"));
    EXPECT_EQ(result.timing.train_ms, totals.at("pipeline.train"));
    EXPECT_EQ(result.timing.distances_ms,
              totals.at("pipeline.distances"));
    EXPECT_EQ(result.timing.arborescence_ms,
              totals.at("pipeline.arborescence"));
    EXPECT_EQ(result.timing.total_ms,
              totals.at("pipeline.reconstruct"));
}

} // namespace

/**
 * @file
 * Tests for the k-parent relaxation (Section 6.4's CFI trade-off)
 * and the Graphviz export.
 */
#include <gtest/gtest.h>

#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "rock/relaxed.h"
#include "support/error.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

struct Case {
    toyc::CompileResult compiled;
    core::ReconstructionResult result;
    eval::GroundTruth gt;
};

Case
run(const corpus::CorpusProgram& example)
{
    Case c;
    c.compiled = toyc::compile(example.program, example.options);
    c.result = core::reconstruct(c.compiled.image);
    c.gt = eval::ground_truth_from_debug(c.compiled.debug);
    return c;
}

TEST(Relaxed, KOneIsIdentity)
{
    Case c = run(corpus::streams_program());
    core::Hierarchy h = core::relaxed_hierarchy(c.result, 1);
    for (int v = 0; v < h.size(); ++v) {
        EXPECT_EQ(h.parent(v), c.result.hierarchy.parent(v));
        EXPECT_EQ(h.parents(v), c.result.hierarchy.parents(v));
    }
}

TEST(Relaxed, RequiresPositiveK)
{
    Case c = run(corpus::streams_program());
    EXPECT_THROW(core::relaxed_hierarchy(c.result, 0),
                 support::FatalError);
}

TEST(Relaxed, AddsSecondBestFeasibleParent)
{
    Case c = run(corpus::streams_program());
    core::Hierarchy h = core::relaxed_hierarchy(c.result, 2);
    // FlushableStream had two feasible parents; with k=2 both attach.
    int flushable = h.index_of(
        c.compiled.debug.class_to_vtable.at("FlushableStream"));
    EXPECT_EQ(h.parents(flushable).size(), 2u);
    // Stream had none; it stays a root with one... zero parents.
    int stream = h.index_of(
        c.compiled.debug.class_to_vtable.at("Stream"));
    EXPECT_TRUE(h.parents(stream).empty());
}

TEST(Relaxed, NeverCreatesParentCycles)
{
    for (const char* name :
         {"echoparams", "tinyserver", "gperf", "Analyzer"}) {
        Case c = run(corpus::benchmark_by_name(name).program);
        for (int k = 2; k <= 4; ++k) {
            core::Hierarchy h = core::relaxed_hierarchy(c.result, k);
            for (int v = 0; v < h.size(); ++v) {
                EXPECT_EQ(h.successors(v).count(v), 0u)
                    << name << " k=" << k;
            }
        }
    }
}

TEST(Relaxed, MonotoneTradeoff)
{
    Case c = run(corpus::benchmark_by_name("tinyserver").program);
    double prev_missing = 1e18;
    double prev_added = -1.0;
    for (int k = 1; k <= 3; ++k) {
        core::Hierarchy h = core::relaxed_hierarchy(c.result, k);
        eval::AppDistance d = eval::application_distance(h, c.gt);
        EXPECT_LE(d.avg_missing, prev_missing + 1e-9);
        EXPECT_GE(d.avg_added, prev_added - 1e-9);
        prev_missing = d.avg_missing;
        prev_added = d.avg_added;
    }
}

TEST(Dot, ContainsNodesAndEdges)
{
    Case c = run(corpus::streams_program());
    core::Hierarchy h = c.result.hierarchy;
    for (int v = 0; v < h.size(); ++v)
        h.set_name(v, c.gt.names.at(h.type_at(v)));
    std::string dot = h.to_dot("streams");
    EXPECT_NE(dot.find("digraph \"streams\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"Stream\""), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // Two parent edges (Stream -> each child).
    std::size_t edges = 0;
    for (std::size_t pos = dot.find("->"); pos != std::string::npos;
         pos = dot.find("->", pos + 1)) {
        ++edges;
    }
    EXPECT_EQ(edges, 2u);
}

TEST(Dot, ExtraParentsAreDashed)
{
    Case c = run(corpus::multiple_inheritance_program());
    std::string dot = c.result.hierarchy.to_dot();
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

} // namespace

/**
 * @file
 * Unit tests for event/alphabet handling, vtable scanning, and the
 * symbolic executor.
 */
#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "analysis/event.h"
#include "analysis/symexec.h"
#include "analysis/vtable_scan.h"
#include "bir/builder.h"
#include "corpus/examples.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::analysis;
using namespace rock::bir;

// ---------------------------------------------------------------------
// Events and alphabet
// ---------------------------------------------------------------------

TEST(Event, ToStringCoversAllKinds)
{
    EXPECT_EQ(to_string(Event{EventKind::VirtCall, 2, 0}), "C(2)");
    EXPECT_EQ(to_string(Event{EventKind::VirtCall, 1, 8}), "C(1@8)");
    EXPECT_EQ(to_string(Event{EventKind::ReadField, 4, 0}), "R(4)");
    EXPECT_EQ(to_string(Event{EventKind::WriteField, 8, 0}), "W(8)");
    EXPECT_EQ(to_string(Event{EventKind::PassedThis, 0, 0}), "this");
    EXPECT_EQ(to_string(Event{EventKind::PassedArg, 1, 0}), "Arg(1)");
    EXPECT_EQ(to_string(Event{EventKind::Returned, 0, 0}), "ret");
    EXPECT_EQ(to_string(Event{EventKind::CallDirect, 0x1440, 0}),
              "call(0x1440)");
}

TEST(Alphabet, InternIsStableAndDense)
{
    Alphabet alpha;
    Event a{EventKind::VirtCall, 0, 0};
    Event b{EventKind::VirtCall, 1, 0};
    EXPECT_EQ(alpha.intern(a), 0);
    EXPECT_EQ(alpha.intern(b), 1);
    EXPECT_EQ(alpha.intern(a), 0); // repeated intern is stable
    EXPECT_EQ(alpha.size(), 2);
    EXPECT_EQ(alpha.lookup(b), 1);
    EXPECT_EQ(alpha.lookup(Event{EventKind::Returned, 0, 0}), -1);
    EXPECT_EQ(alpha.event(1), b);
}

TEST(Alphabet, TraceletInternRoundTrip)
{
    Alphabet alpha;
    Tracelet tr{{EventKind::VirtCall, 0, 0},
                {EventKind::WriteField, 4, 0},
                {EventKind::VirtCall, 0, 0}};
    auto ids = alpha.intern(tr);
    EXPECT_EQ(ids, (std::vector<int>{0, 1, 0}));
    EXPECT_EQ(alpha.lookup(tr), ids);
}

// ---------------------------------------------------------------------
// Handcrafted images for scanner/executor tests
// ---------------------------------------------------------------------

/**
 * Builds an image with one vtable (2 slots) and one "constructor"
 * that allocates, stores the vtable pointer, and performs a virtual
 * call and field traffic:
 *
 *   ctor-like user function:
 *     movi r1, 8 ; setarg 0, r1 ; call alloc ; getret r2
 *     movi r3, vt ; store [r2+0], r3         ; typing store
 *     movi r4, 7 ; store [r2+4], r4          ; W(4)
 *     load r5, [r2+0] ; load r6, [r5+4]      ; vptr, slot 1
 *     setarg 0, r2 ; icall r6                ; C(1)
 *     load r7, [r2+4]                        ; R(4)
 *     ret
 */
struct CraftedImage {
    BinaryImage image;
    std::uint32_t vt_addr = 0;
    std::uint32_t method_addr = 0;
    std::uint32_t user_addr = 0;
};

CraftedImage
craft_basic()
{
    ImageBuilder ib;
    FuncId m0 = ib.declare_function("m0");
    FuncId m1 = ib.declare_function("m1");
    FuncId user = ib.declare_function("user");
    VtId vt = ib.add_vtable("T", 2);
    ib.set_slot(vt, 0, m0);
    ib.set_slot(vt, 1, m1);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m0, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.getarg(2, 0);
        fb.load(0, 2, 4); // this-relative read: R(4)
        fb.ret();
        ib.define_function(m1, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.movi(1, 8);
        fb.setarg(0, 1);
        fb.call_addr(kAllocStub);
        fb.getret(2);
        fb.movi_vtable(3, vt);
        fb.store(2, 0, 3);
        fb.movi(4, 7);
        fb.store(2, 4, 4);
        fb.load(5, 2, 0);
        fb.load(6, 5, 4);
        fb.setarg(0, 2);
        fb.icall(6);
        fb.load(7, 2, 4);
        fb.ret();
        ib.define_function(user, std::move(fb));
    }
    CraftedImage out;
    out.image = ib.link({});
    out.vt_addr = ib.vtable_addr(vt);
    out.method_addr = ib.func_addr(m1);
    out.user_addr = ib.func_addr(user);
    return out;
}

TEST(VtableScan, FindsStoredVtable)
{
    CraftedImage crafted = craft_basic();
    auto tables = scan_vtables(crafted.image);
    ASSERT_EQ(tables.size(), 1u);
    EXPECT_EQ(tables[0].addr, crafted.vt_addr);
    EXPECT_EQ(tables[0].slots.size(), 2u);
    EXPECT_EQ(tables[0].slots[1], crafted.method_addr);
}

TEST(VtableScan, IgnoresUnstoredDataAddresses)
{
    // A function that materializes a data address but never stores it
    // must not produce a vtable.
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId g = ib.declare_function("g");
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, g);
    {
        FunctionBuilder fb;
        fb.movi_vtable(1, vt); // loaded, never stored
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(g, std::move(fb));
    }
    BinaryImage img = ib.link({});
    EXPECT_TRUE(scan_vtables(img).empty());
}

TEST(VtableScan, RunStopsAtNonFunctionWord)
{
    // The stripped RTTI back-pointer (0) of the next vtable bounds the
    // previous table's slot run.
    CraftedImage crafted = craft_basic();
    auto tables = scan_vtables(crafted.image);
    ASSERT_EQ(tables.size(), 1u);
    // Data section: [rtti=0][slot0][slot1]; exactly 2 slots seen.
    EXPECT_EQ(tables[0].slots.size(), 2u);
}

TEST(SymExec, ExtractsTypedEvents)
{
    CraftedImage crafted = craft_basic();
    auto tables = scan_vtables(crafted.image);
    SymExecConfig config;
    SymbolicExecutor exec(crafted.image, tables, config);

    std::set<std::uint32_t> this_callees{crafted.method_addr};
    const FunctionEntry* user =
        crafted.image.function_at(crafted.user_addr);
    ASSERT_NE(user, nullptr);
    FunctionAnalysis fa = exec.run(*user, this_callees, false);

    ASSERT_EQ(fa.tracelets.count(crafted.vt_addr), 1u);
    const auto& tracelets = fa.tracelets.at(crafted.vt_addr);
    ASSERT_EQ(tracelets.size(), 1u);
    // Expected object event sequence: W(4), C(1), R(4).
    Tracelet expected{{EventKind::WriteField, 4, 0},
                      {EventKind::VirtCall, 1, 0},
                      {EventKind::ReadField, 4, 0}};
    EXPECT_EQ(tracelets[0], expected);
    EXPECT_EQ(fa.paths, 1);
}

TEST(SymExec, VptrAccessesProduceNoFieldEvents)
{
    CraftedImage crafted = craft_basic();
    auto tables = scan_vtables(crafted.image);
    SymbolicExecutor exec(crafted.image, tables, {});
    const FunctionEntry* user =
        crafted.image.function_at(crafted.user_addr);
    FunctionAnalysis fa = exec.run(*user, {}, false);
    for (const auto& [type, tracelets] : fa.tracelets) {
        (void)type;
        for (const auto& tr : tracelets) {
            for (const auto& ev : tr) {
                if (ev.kind == EventKind::ReadField ||
                    ev.kind == EventKind::WriteField) {
                    EXPECT_NE(ev.index, 0u)
                        << "vptr slot surfaced as field event";
                }
            }
        }
    }
}

TEST(SymExec, ThisParamTraceletsAttributedToOwningVtables)
{
    CraftedImage crafted = craft_basic();
    auto tables = scan_vtables(crafted.image);
    SymbolicExecutor exec(crafted.image, tables, {});
    const FunctionEntry* method =
        crafted.image.function_at(crafted.method_addr);
    ASSERT_NE(method, nullptr);
    FunctionAnalysis fa = exec.run(*method, {}, true);
    // m1 reads [this+4]: one R(4) tracelet attributed to T.
    ASSERT_EQ(fa.tracelets.count(crafted.vt_addr), 1u);
    Tracelet expected{{EventKind::ReadField, 4, 0}};
    EXPECT_EQ(fa.tracelets.at(crafted.vt_addr)[0], expected);
}

TEST(SymExec, BranchesForkPaths)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId m = ib.declare_function("m");
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, m);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.movi(1, 8);
        fb.setarg(0, 1);
        fb.call_addr(kAllocStub);
        fb.getret(2);
        fb.movi_vtable(3, vt);
        fb.store(2, 0, 3);
        int l_else = fb.new_label();
        fb.getarg(0, 9); // opaque condition
        fb.jz(0, l_else);
        fb.store(2, 4, 1); // then: W(4)
        fb.bind(l_else);
        fb.store(2, 8, 1); // join: W(8)
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto tables = scan_vtables(img);
    SymbolicExecutor exec(img, tables, {});
    FunctionAnalysis fa = exec.run(img.functions[0], {}, false);
    EXPECT_EQ(fa.paths, 2);
    std::uint32_t vt_addr = tables[0].addr;
    ASSERT_EQ(fa.tracelets.count(vt_addr), 1u);
    const auto& tracelets = fa.tracelets.at(vt_addr);
    // One path [W(4), W(8)], one [W(8)].
    ASSERT_EQ(tracelets.size(), 2u);
    std::multiset<std::size_t> lengths;
    for (const auto& tr : tracelets)
        lengths.insert(tr.size());
    EXPECT_EQ(lengths, (std::multiset<std::size_t>{1, 2}));
}

TEST(SymExec, LoopsUnrollBounded)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId m = ib.declare_function("m");
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, m);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.movi(1, 8);
        fb.setarg(0, 1);
        fb.call_addr(kAllocStub);
        fb.getret(2);
        fb.movi_vtable(3, vt);
        fb.store(2, 0, 3);
        int top = fb.new_label();
        fb.bind(top);
        fb.store(2, 4, 1); // loop body: W(4)
        fb.getarg(0, 9);
        fb.jnz(0, top);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto tables = scan_vtables(img);
    SymExecConfig config;
    config.max_backjumps = 2;
    SymbolicExecutor exec(img, tables, config);
    FunctionAnalysis fa = exec.run(img.functions[0], {}, false);
    // Paths: exit after 1, 2, or 3 iterations (2 backjumps max).
    EXPECT_EQ(fa.paths, 3);
    std::size_t longest = 0;
    for (const auto& tr : fa.tracelets.at(tables[0].addr))
        longest = std::max(longest, tr.size());
    EXPECT_EQ(longest, 3u);
}

TEST(SymExec, TraceletWindowing)
{
    // 10 field writes -> one window of 7 and one of 3.
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId m = ib.declare_function("m");
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, m);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.movi(1, 8);
        fb.setarg(0, 1);
        fb.call_addr(kAllocStub);
        fb.getret(2);
        fb.movi_vtable(3, vt);
        fb.store(2, 0, 3);
        for (int i = 0; i < 10; ++i)
            fb.store(2, 4 + 4 * i, 1);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto tables = scan_vtables(img);
    SymbolicExecutor exec(img, tables, {});
    FunctionAnalysis fa = exec.run(img.functions[0], {}, false);
    const auto& tracelets = fa.tracelets.at(tables[0].addr);
    ASSERT_EQ(tracelets.size(), 2u);
    EXPECT_EQ(tracelets[0].size(), 7u);
    EXPECT_EQ(tracelets[1].size(), 3u);
}

TEST(SymExec, CtorEvidenceFromThisParam)
{
    // A classic out-of-line ctor: stores the vtable into arg0 and
    // calls the parent ctor first.
    ImageBuilder ib;
    FuncId parent_ctor = ib.declare_function("P::ctor");
    FuncId child_ctor = ib.declare_function("C::ctor");
    FuncId m = ib.declare_function("m");
    VtId vt_p = ib.add_vtable("P", 1);
    VtId vt_c = ib.add_vtable("C", 1);
    ib.set_slot(vt_p, 0, m);
    ib.set_slot(vt_c, 0, m);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.getarg(2, 0);
        fb.movi_vtable(9, vt_p);
        fb.store(2, 0, 9);
        fb.retval(2);
        ib.define_function(parent_ctor, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.getarg(2, 0);
        fb.setarg(0, 2);
        fb.call(parent_ctor);
        fb.movi_vtable(9, vt_c);
        fb.store(2, 0, 9);
        fb.retval(2);
        ib.define_function(child_ctor, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto tables = scan_vtables(img);
    ASSERT_EQ(tables.size(), 2u);

    AnalysisResult result = analyze(img);
    // Both ctors identified with their constructed types.
    ASSERT_EQ(result.ctor_types.size(), 2u);

    // The child's evidence records the parent-ctor call at offset 0.
    bool found = false;
    for (const auto& ev : result.evidence) {
        if (!ev.from_this_param || ev.this_calls.empty())
            continue;
        for (const auto& [off, callee] : ev.this_calls) {
            if (off == 0 && result.ctor_types.count(callee))
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Analyze, StreamsEndToEnd)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    AnalysisResult result = analyze(compiled.image);

    EXPECT_EQ(result.vtables.size(), 3u);
    // Every type collected tracelets.
    for (const auto& [cls, vt] : compiled.debug.class_to_vtable) {
        EXPECT_GT(result.type_tracelets[vt].size(), 0u) << cls;
    }
    // Stream's tracelets include the triple-send pattern C(0)x3.
    std::uint32_t stream_vt =
        compiled.debug.class_to_vtable.at("Stream");
    bool seen_triple = false;
    for (const auto& tr : result.type_tracelets[stream_vt]) {
        int sends = 0;
        for (const auto& ev : tr) {
            if (ev.kind == EventKind::VirtCall && ev.index == 0)
                ++sends;
        }
        if (sends >= 3)
            seen_triple = true;
    }
    EXPECT_TRUE(seen_triple);
}

TEST(Analyze, InlinedCtorsStillYieldEvidence)
{
    // With ctors inlined at allocation sites, the vptr stores move
    // into the usage functions, but evidence must still appear.
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    AnalysisResult result = analyze(compiled.image);
    int with_stores = 0;
    for (const auto& ev : result.evidence) {
        if (!ev.vptr_stores.empty())
            ++with_stores;
    }
    EXPECT_GT(with_stores, 0);
}

TEST(Analyze, ParallelMatchesSerial)
{
    // The per-function sweep is embarrassingly parallel (paper
    // Section 3.2); the merged output must be identical for any
    // thread count.
    corpus::CorpusProgram example = corpus::datasources_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);

    SymExecConfig serial;
    SymExecConfig parallel = serial;
    parallel.threads = 4;
    AnalysisResult a = analyze(compiled.image, serial);
    AnalysisResult b = analyze(compiled.image, parallel);

    EXPECT_EQ(a.vtables, b.vtables);
    EXPECT_EQ(a.ctor_types, b.ctor_types);
    EXPECT_EQ(a.total_paths, b.total_paths);
    ASSERT_EQ(a.type_tracelets.size(), b.type_tracelets.size());
    for (const auto& [type, tracelets] : a.type_tracelets) {
        ASSERT_EQ(b.type_tracelets.count(type), 1u);
        EXPECT_EQ(tracelets, b.type_tracelets.at(type));
    }
    EXPECT_EQ(a.evidence.size(), b.evidence.size());
}

} // namespace

/**
 * @file
 * Determinism of the parallel reconstruction pipeline.
 *
 * The contract (RockConfig::threads): any thread count must produce a
 * ReconstructionResult that is bit-identical to the serial path --
 * same hierarchies (including multiple-inheritance extra parents),
 * same distance map down to the last double bit, same co-optimal
 * alternative ordering per family. Under `cmake -DROCK_SANITIZE=thread`
 * this suite also runs TSan-instrumented as ctest entry
 * `determinism_tsan`, doubling as a data-race check.
 */
#include <gtest/gtest.h>

#include <thread>

#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "corpus/generator.h"
#include "obs/metrics.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::core;

ReconstructionResult
run_with(const bir::BinaryImage& image, int threads)
{
    RockConfig config;
    config.threads = threads;
    return reconstruct(image, config);
}

void
expect_identical(const ReconstructionResult& serial,
                 const ReconstructionResult& parallel)
{
    // Hierarchy: primary parent and every extra (MI) parent per type.
    ASSERT_EQ(serial.hierarchy.size(), parallel.hierarchy.size());
    for (int v = 0; v < serial.hierarchy.size(); ++v) {
        EXPECT_EQ(serial.hierarchy.parent(v),
                  parallel.hierarchy.parent(v))
            << "type " << v;
        EXPECT_EQ(serial.hierarchy.parents(v),
                  parallel.hierarchy.parents(v))
            << "type " << v;
    }
    EXPECT_EQ(serial.hierarchy.to_string(),
              parallel.hierarchy.to_string());

    // Distance map: identical keys AND bit-identical weights (the
    // parallel path must not reassociate any floating-point math).
    EXPECT_EQ(serial.sorted_distances(), parallel.sorted_distances());

    // Families: same members, same alternatives in the same order.
    ASSERT_EQ(serial.families.size(), parallel.families.size());
    for (std::size_t f = 0; f < serial.families.size(); ++f) {
        EXPECT_EQ(serial.families[f].members,
                  parallel.families[f].members)
            << "family " << f;
        EXPECT_EQ(serial.families[f].alternatives,
                  parallel.families[f].alternatives)
            << "family " << f;
        EXPECT_EQ(serial.families[f].structurally_ambiguous,
                  parallel.families[f].structurally_ambiguous)
            << "family " << f;
    }
    EXPECT_EQ(serial.ambiguous_families, parallel.ambiguous_families);
    EXPECT_EQ(serial.alphabet.size(), parallel.alphabet.size());
}

TEST(Determinism, CorpusBenchmarksSerialVsFourThreads)
{
    for (const char* name : {"echoparams", "tinyserver", "Smoothing"}) {
        SCOPED_TRACE(name);
        corpus::CorpusProgram prog =
            corpus::benchmark_by_name(name).program;
        toyc::CompileResult compiled =
            toyc::compile(prog.program, prog.options);
        expect_identical(run_with(compiled.image, 1),
                         run_with(compiled.image, 4));
    }
}

TEST(Determinism, StreamsExampleEveryThreadCount)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    ReconstructionResult serial = run_with(compiled.image, 1);
    for (int threads : {2, 3, 4, 8}) {
        SCOPED_TRACE(threads);
        expect_identical(serial, run_with(compiled.image, threads));
    }
}

TEST(Determinism, GeneratedCorpusWithNoiseAndMi)
{
    corpus::GeneratorSpec spec;
    spec.num_classes = 40;
    spec.num_trees = 3;
    spec.max_depth = 4;
    spec.scenarios_per_class = 2;
    spec.fold_noise_pairs = 2;
    spec.mi_prob = 0.1;
    spec.seed = 7;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    ReconstructionResult serial = run_with(compiled.image, 1);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_identical(serial, run_with(compiled.image, threads));
    }
}

TEST(Determinism, HardwareConcurrencyKnob)
{
    // threads=0 resolves to "all cores" and must also be identical.
    corpus::CorpusProgram example = corpus::echoparams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    expect_identical(run_with(compiled.image, 1),
                     run_with(compiled.image, 0));
}

TEST(Determinism, OversubscribedThreadCounts)
{
    // Way more workers than work items: a 5-class program has far
    // fewer functions/types than 33 threads, so most workers see an
    // empty stride. The merge must not depend on which ones did.
    corpus::GeneratorSpec spec;
    spec.num_classes = 5;
    spec.num_trees = 1;
    spec.max_depth = 2;
    spec.seed = 21;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    ReconstructionResult serial = run_with(compiled.image, 1);
    for (int threads : {5, 16, 33}) {
        SCOPED_TRACE(threads);
        expect_identical(serial, run_with(compiled.image, threads));
    }
}

TEST(Determinism, SerialMatchesTwiceHardwareConcurrency)
{
    // Oversubscription relative to the machine itself (2x the core
    // count) must still be bit-identical to the serial path.
    unsigned hw = std::thread::hardware_concurrency();
    int threads = static_cast<int>(hw == 0 ? 8 : 2 * hw);
    corpus::GeneratorSpec spec;
    spec.num_classes = 24;
    spec.num_trees = 2;
    spec.mi_prob = 0.15;
    spec.fold_noise_pairs = 1;
    spec.seed = 22;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    expect_identical(run_with(compiled.image, 1),
                     run_with(compiled.image, threads));
}

TEST(Determinism, MetricsCountersBitIdenticalAcrossThreadCounts)
{
    // The obs determinism contract: every counter counts work items
    // (pure functions of the input image), never scheduling
    // artifacts, so the whole counter map is bit-identical for
    // threads in {1, 2, hardware}.
    corpus::GeneratorSpec spec;
    spec.num_classes = 24;
    spec.num_trees = 2;
    spec.max_depth = 3;
    spec.scenarios_per_class = 2;
    spec.mi_prob = 0.1;
    spec.seed = 13;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));

    auto counters_with = [&](int threads) {
        obs::Registry::global().reset();
        run_with(compiled.image, threads);
        return obs::Registry::global().counter_values();
    };
    std::map<std::string, std::uint64_t> serial = counters_with(1);
    EXPECT_GE(serial.size(), 15u);
    for (int threads : {2, 0}) { // 0 = hardware concurrency
        SCOPED_TRACE(threads);
        EXPECT_EQ(serial, counters_with(threads));
    }
}

TEST(Determinism, StageTimingPopulatedForEveryStage)
{
    corpus::GeneratorSpec spec;
    spec.num_classes = 20;
    spec.num_trees = 2;
    spec.seed = 11;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    for (int threads : {1, 4}) {
        SCOPED_TRACE(threads);
        ReconstructionResult result = run_with(compiled.image, threads);
        EXPECT_GT(result.timing.verify_ms, 0.0);
        EXPECT_TRUE(result.diagnostics.empty()); // toyc output is clean
        EXPECT_GT(result.timing.analyze_ms, 0.0);
        EXPECT_GT(result.timing.structural_ms, 0.0);
        EXPECT_GT(result.timing.train_ms, 0.0);
        EXPECT_GT(result.timing.distances_ms, 0.0);
        EXPECT_GT(result.timing.arborescence_ms, 0.0);
        EXPECT_GE(result.timing.total_ms,
                  result.timing.analyze_ms +
                      result.timing.structural_ms);
    }
}

} // namespace

/**
 * @file
 * Tests for type prediction on unknown objects (Section 6.3).
 */
#include <gtest/gtest.h>

#include "support/error.h"
#include "corpus/builder.h"
#include "corpus/examples.h"
#include "rock/classify.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using toyc::Stmt;
using toyc::UsageFunc;

/** streams program + a function receiving an unknown object. */
corpus::CorpusProgram
streams_with_unknown(const std::string& cls,
                     const std::vector<std::string>& calls)
{
    corpus::CorpusProgram example = corpus::streams_program();
    UsageFunc fn;
    fn.name = "handle_unknown";
    fn.params.push_back({"s", cls});
    for (const auto& method : calls)
        fn.body.push_back(Stmt::virt_call("s", method));
    example.program.usages.push_back(std::move(fn));
    return example;
}

struct Fixture {
    toyc::CompileResult compiled;
    core::ReconstructionResult result;

    std::uint32_t
    vtable(const std::string& cls) const
    {
        return compiled.debug.class_to_vtable.at(cls);
    }

    std::uint32_t
    function(const std::string& name) const
    {
        for (const auto& [addr, fname] : compiled.debug.func_names) {
            if (fname == name)
                return addr;
        }
        ADD_FAILURE() << "no function " << name;
        return 0;
    }
};

Fixture
run(const corpus::CorpusProgram& example)
{
    Fixture f;
    f.compiled = toyc::compile(example.program, example.options);
    f.result = core::reconstruct(f.compiled.image);
    return f;
}

TEST(Classify, FlushablePatternRanksFlushableFirst)
{
    Fixture f = run(streams_with_unknown(
        "FlushableStream", {"send", "send", "send", "flush", "close"}));
    auto ranking = core::classify_function_receiver(
        f.result, f.compiled.image, f.function("handle_unknown"));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking[0].vtable_addr, f.vtable("FlushableStream"));
    EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST(Classify, ConfirmablePatternRanksConfirmableFirst)
{
    Fixture f = run(streams_with_unknown(
        "ConfirmableStream",
        {"send", "confirm", "send", "confirm"}));
    auto ranking = core::classify_function_receiver(
        f.result, f.compiled.image, f.function("handle_unknown"));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking[0].vtable_addr,
              f.vtable("ConfirmableStream"));
}

TEST(Classify, BasePatternDoesNotPreferAChild)
{
    // A pure base pattern must rank Stream at least as high as any
    // derived type.
    Fixture f = run(streams_with_unknown("Stream",
                                         {"send", "send", "send"}));
    auto ranking = core::classify_function_receiver(
        f.result, f.compiled.image, f.function("handle_unknown"));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking[0].vtable_addr, f.vtable("Stream"));
}

TEST(Classify, EmptyTraceletsYieldEmptyRanking)
{
    Fixture f = run(corpus::streams_program());
    auto ranking = core::classify_tracelets(f.result, {});
    EXPECT_TRUE(ranking.empty());
}

TEST(Classify, UnknownEventsUseUniformPenalty)
{
    Fixture f = run(corpus::streams_program());
    // An event kind never seen during reconstruction.
    analysis::Tracelet alien{
        {analysis::EventKind::CallDirect, 0xdead, 0}};
    auto ranking = core::classify_tracelets(f.result, {alien});
    ASSERT_EQ(ranking.size(), 3u);
    // All types get exactly the floor score.
    EXPECT_NEAR(ranking[0].score, ranking[2].score, 1e-12);
}

TEST(Classify, TargetSetViaHierarchy)
{
    // The Section 6.3 scenario end to end: predicted type plus its
    // successors = the virtual-call target set.
    Fixture f = run(streams_with_unknown("Stream",
                                         {"send", "send", "send"}));
    auto ranking = core::classify_function_receiver(
        f.result, f.compiled.image, f.function("handle_unknown"));
    int node = f.result.hierarchy.index_of(ranking[0].vtable_addr);
    ASSERT_GE(node, 0);
    auto succ = f.result.hierarchy.successors(node);
    // Stream predicted -> both derived streams are legal targets.
    EXPECT_EQ(succ.size(), 2u);
}

TEST(Classify, UnseenFunctionIsFatal)
{
    Fixture f = run(corpus::streams_program());
    EXPECT_THROW(core::classify_function_receiver(
                     f.result, f.compiled.image, 0xdead0000),
                 support::FatalError);
}

} // namespace

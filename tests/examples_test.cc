/**
 * @file
 * Integration tests over the paper's motivating example programs.
 */
#include <gtest/gtest.h>

#include "corpus/examples.h"
#include "eval/application_distance.h"
#include "eval/forest_metrics.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

struct Reconstructed {
    toyc::CompileResult compiled;
    core::ReconstructionResult result;
    eval::GroundTruth gt;

    int
    node(const std::string& cls) const
    {
        return result.hierarchy.index_of(
            compiled.debug.class_to_vtable.at(cls));
    }
};

Reconstructed
run(const corpus::CorpusProgram& example,
    const core::RockConfig& config = {})
{
    Reconstructed r;
    r.compiled = toyc::compile(example.program, example.options);
    r.result = core::reconstruct(r.compiled.image, config);
    r.gt = eval::ground_truth_from_debug(r.compiled.debug);
    return r;
}

TEST(Examples, DataSourcesExact)
{
    Reconstructed r = run(corpus::datasources_program());
    ASSERT_EQ(r.gt.types.size(), 7u);

    eval::AppDistance dist =
        eval::application_distance(r.result.hierarchy, r.gt);
    EXPECT_DOUBLE_EQ(dist.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(dist.avg_added, 0.0);

    // The CFI property from the paper's Fig. 1: no external source may
    // be a successor of InternalDataSource.
    auto internal_succ = r.result.hierarchy.successors(
        r.node("InternalDataSource"));
    EXPECT_EQ(internal_succ.size(), 2u);
    EXPECT_TRUE(internal_succ.count(r.node("CachedInternalSource")));
    EXPECT_TRUE(internal_succ.count(r.node("FileInternalSource")));
    EXPECT_FALSE(internal_succ.count(r.node("HttpExternalSource")));
    EXPECT_FALSE(internal_succ.count(r.node("FtpExternalSource")));
}

TEST(Examples, EchoparamsStructurallyAmbiguousButExact)
{
    Reconstructed r = run(corpus::echoparams_program());
    ASSERT_EQ(r.gt.types.size(), 4u);

    // Structure alone admits many hierarchies (the paper counts 64
    // for the real echoparams)...
    EXPECT_EQ(r.result.ambiguous_families, 1);
    eval::AppDistance structural = eval::application_distance_structural(
        r.result.structural, r.gt);
    EXPECT_GT(structural.avg_added, 1.0);

    // ...but the behavioral ranking recovers the star exactly.
    eval::AppDistance dist =
        eval::application_distance(r.result.hierarchy, r.gt);
    EXPECT_DOUBLE_EQ(dist.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(dist.avg_added, 0.0);
}

TEST(Examples, CgridSplicesOptimizedOutParents)
{
    Reconstructed r = run(corpus::cgrid_program());
    // CEdit and CDialog are abstract: optimized out of the binary.
    EXPECT_EQ(r.compiled.debug.class_to_vtable.count("CEdit"), 0u);
    EXPECT_EQ(r.compiled.debug.class_to_vtable.count("CDialog"), 0u);
    ASSERT_EQ(r.gt.types.size(), 4u);

    // Ground truth (as it exists in the binary): four roots.
    for (const char* cls :
         {"CGridEditorComboBoxEdit", "CGridEditorText", "CAboutDlg",
          "CGridListCtrlExDlg"}) {
        EXPECT_EQ(r.gt.parent.count(
                      r.compiled.debug.class_to_vtable.at(cls)),
                  0u)
            << cls;
    }

    // The reconstruction splices each sibling pair into one hierarchy
    // (paper Fig. 9b): one of each pair becomes the other's parent.
    int combo = r.node("CGridEditorComboBoxEdit");
    int text = r.node("CGridEditorText");
    int about = r.node("CAboutDlg");
    int main_dlg = r.node("CGridListCtrlExDlg");
    EXPECT_TRUE(r.result.hierarchy.parent(combo) == text ||
                r.result.hierarchy.parent(text) == combo);
    EXPECT_TRUE(r.result.hierarchy.parent(about) == main_dlg ||
                r.result.hierarchy.parent(main_dlg) == about);

    // Against the binary ground truth this scores as added types --
    // the documented cost of recovering source-level relations.
    eval::AppDistance dist =
        eval::application_distance(r.result.hierarchy, r.gt);
    EXPECT_DOUBLE_EQ(dist.avg_missing, 0.0);
    EXPECT_NEAR(dist.avg_added, 0.5, 1e-9); // 2 added over 4 types
}

TEST(Examples, MultipleInheritanceDetected)
{
    Reconstructed r = run(corpus::multiple_inheritance_program());

    // Model has two vptr offsets -> two parents (Section 5.3).
    int model = r.result.structural.index_of(
        r.compiled.debug.class_to_vtable.at("Model"));
    ASSERT_GE(model, 0);
    auto count = r.result.structural.parent_counts.find(model);
    ASSERT_NE(count, r.result.structural.parent_counts.end());
    EXPECT_EQ(count->second, 2);

    // Primary parent: Serializable. Extra parent: Observable.
    int serializable = r.node("Serializable");
    int observable = r.node("Observable");
    int model_node = r.node("Model");
    EXPECT_EQ(r.result.hierarchy.parent(model_node), serializable);
    auto parents = r.result.hierarchy.parents(model_node);
    EXPECT_TRUE(std::find(parents.begin(), parents.end(), observable) !=
                parents.end());

    // Snapshot stays a plain child of Serializable.
    EXPECT_EQ(r.result.hierarchy.parent(r.node("Snapshot")),
              serializable);
}

} // namespace

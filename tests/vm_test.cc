/**
 * @file
 * Tests for the rockvm interpreter (src/vm/).
 *
 * One golden machine-state assertion per bir::Op on hand-assembled
 * images, one negative test per trap kind via targeted corruption,
 * shadow-mirror event goldens (ctor + dispatch emit the same events
 * symexec extracts), a determinism sweep (bit-identical across runs
 * and thread counts), and a schema round-trip of the tracelet JSONL
 * export.
 */
#include <gtest/gtest.h>

#include <set>

#include "analysis/analyze.h"
#include "bir/builder.h"
#include "corpus/examples.h"
#include "toyc/compiler.h"
#include "vm/coverage.h"
#include "vm/trace.h"
#include "vm/vm.h"

namespace {

using namespace rock;
using analysis::Event;
using analysis::EventKind;
using bir::FuncId;
using bir::FunctionBuilder;
using bir::ImageBuilder;
using bir::VtId;
using vm::Interpreter;
using vm::TrapKind;
using vm::VmConfig;
using vm::VmResult;

/** Link a single function into an image. */
bir::BinaryImage
single_function(FunctionBuilder fb)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    ib.define_function(f, std::move(fb));
    return ib.link({});
}

/** Run the only function of @p image with no vtables known. */
VmResult
run_single(const bir::BinaryImage& image, std::uint32_t opaque = 0)
{
    Interpreter interp(image, {}, {}, VmConfig{});
    return interp.run_entry(0, opaque);
}

VmResult
run_single(FunctionBuilder fb, std::uint32_t opaque = 0)
{
    return run_single(single_function(std::move(fb)), opaque);
}

std::uint64_t
ops(const VmResult& r, bir::Op op)
{
    return r.op_counts[static_cast<std::size_t>(op)];
}

/** Overwrite the opcode byte of the instruction at @p addr. */
void
patch_op(bir::BinaryImage& image, std::uint32_t addr, std::uint8_t op)
{
    image.code[addr - image.code_base] = op;
}

/** Overwrite the immediate of the instruction at @p addr. */
void
patch_imm(bir::BinaryImage& image, std::uint32_t addr,
          std::uint32_t imm)
{
    std::size_t off = addr - image.code_base;
    image.code[off + 4] = static_cast<std::uint8_t>(imm & 0xff);
    image.code[off + 5] = static_cast<std::uint8_t>((imm >> 8) & 0xff);
    image.code[off + 6] =
        static_cast<std::uint8_t>((imm >> 16) & 0xff);
    image.code[off + 7] =
        static_cast<std::uint8_t>((imm >> 24) & 0xff);
}

// ---- one golden machine-state assertion per opcode -----------------------

TEST(VmOps, NopExecutesAndFallsThrough)
{
    FunctionBuilder fb;
    fb.nop();
    fb.movi(0, 7);
    fb.retval(0);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 7u);
    EXPECT_EQ(ops(r, bir::Op::Nop), 1u);
    EXPECT_TRUE(r.traps.empty());
}

TEST(VmOps, MovImmLoadsConstant)
{
    FunctionBuilder fb;
    fb.movi(3, 0xdeadbeef);
    fb.retval(3);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 0xdeadbeefu);
}

TEST(VmOps, MovRegCopies)
{
    FunctionBuilder fb;
    fb.movi(1, 9);
    fb.mov(0, 1);
    fb.retval(0);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 9u);
    EXPECT_EQ(ops(r, bir::Op::MovReg), 1u);
}

TEST(VmOps, AddImmAddsSignedImmediate)
{
    FunctionBuilder fb;
    fb.movi(1, 44);
    fb.add(0, 1, -2);
    fb.retval(0);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 42u);
}

TEST(VmOps, StoreThenLoadRoundTripsThroughMemory)
{
    FunctionBuilder fb;
    fb.movi(0, 0x5000); // neither data nor heap: wild but writable
    fb.movi(1, 77);
    fb.store(0, 4, 1);
    fb.load(2, 0, 4);
    fb.retval(2);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 77u);
    EXPECT_EQ(r.stats.wild_writes, 1u);
    EXPECT_EQ(r.stats.wild_reads, 0u); // overlay hit
    EXPECT_EQ(ops(r, bir::Op::Load), 1u);
    EXPECT_EQ(ops(r, bir::Op::Store), 1u);
}

TEST(VmOps, AllocStubReturnsZeroedHeapMemory)
{
    FunctionBuilder fb;
    fb.movi(0, 16);
    fb.setarg(0, 0);
    fb.call_addr(bir::kAllocStub);
    fb.getret(1);
    fb.load(2, 1, 8); // untouched heap cell reads as 0
    fb.movi(3, 5);
    fb.store(1, 0, 3);
    fb.load(4, 1, 0);
    fb.retval(4);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 5u);
    EXPECT_EQ(r.stats.allocs, 1u);
    EXPECT_EQ(r.stats.wild_reads, 0u);
    EXPECT_EQ(r.stats.wild_writes, 0u);
}

TEST(VmOps, CallGetRetReturnsCalleeValue)
{
    ImageBuilder ib;
    FuncId main = ib.declare_function("main");
    FuncId leaf = ib.declare_function("leaf");
    FunctionBuilder fm;
    fm.call(leaf);
    fm.getret(0);
    fm.retval(0);
    ib.define_function(main, std::move(fm));
    FunctionBuilder fl;
    fl.movi(0, 123);
    fl.retval(0);
    ib.define_function(leaf, std::move(fl));
    bir::BinaryImage image = ib.link({});

    Interpreter interp(image, {}, {}, VmConfig{});
    std::size_t main_index =
        image.functions[0].addr == ib.func_addr(main) ? 0 : 1;
    VmResult r = interp.run_entry(main_index, 0);
    EXPECT_EQ(r.entry_ret, 123u);
    EXPECT_EQ(r.stats.calls, 1u);
    EXPECT_EQ(r.stats.frames, 2u);
    EXPECT_EQ(ops(r, bir::Op::Call), 1u);
    EXPECT_EQ(ops(r, bir::Op::GetRet), 1u);
}

TEST(VmOps, SetArgGetArgPassesValues)
{
    ImageBuilder ib;
    FuncId main = ib.declare_function("main");
    FuncId leaf = ib.declare_function("leaf");
    FunctionBuilder fm;
    fm.movi(1, 33);
    fm.setarg(2, 1);
    fm.call(leaf);
    fm.getret(0);
    fm.retval(0);
    ib.define_function(main, std::move(fm));
    FunctionBuilder fl;
    fl.getarg(0, 2);
    fl.retval(0);
    ib.define_function(leaf, std::move(fl));
    bir::BinaryImage image = ib.link({});

    Interpreter interp(image, {}, {}, VmConfig{});
    std::size_t main_index =
        image.functions[0].addr == ib.func_addr(main) ? 0 : 1;
    VmResult r = interp.run_entry(main_index, 0);
    EXPECT_EQ(r.entry_ret, 33u);
}

TEST(VmOps, CallIndReachesFunctionByAddress)
{
    ImageBuilder ib;
    FuncId main = ib.declare_function("main");
    FuncId leaf = ib.declare_function("leaf");
    FunctionBuilder fm;
    fm.movi_func(1, leaf);
    fm.icall(1);
    fm.getret(0);
    fm.retval(0);
    ib.define_function(main, std::move(fm));
    FunctionBuilder fl;
    fl.movi(0, 55);
    fl.retval(0);
    ib.define_function(leaf, std::move(fl));
    bir::BinaryImage image = ib.link({});

    Interpreter interp(image, {}, {}, VmConfig{});
    std::size_t main_index =
        image.functions[0].addr == ib.func_addr(main) ? 0 : 1;
    VmResult r = interp.run_entry(main_index, 0);
    EXPECT_EQ(r.entry_ret, 55u);
    EXPECT_EQ(ops(r, bir::Op::CallInd), 1u);
}

TEST(VmOps, RetProducesZeroReturnValue)
{
    FunctionBuilder fb;
    fb.movi(0, 9);
    fb.ret();
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 0u);
    EXPECT_EQ(ops(r, bir::Op::Ret), 1u);
}

TEST(VmOps, JmpSkipsOverInstructions)
{
    FunctionBuilder fb;
    int skip = fb.new_label();
    fb.movi(0, 1);
    fb.jmp(skip);
    fb.movi(0, 2);
    fb.bind(skip);
    fb.retval(0);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 1u);
    EXPECT_EQ(ops(r, bir::Op::Jmp), 1u);
}

TEST(VmOps, JnzTakenOnNonZero)
{
    FunctionBuilder fb;
    int target = fb.new_label();
    fb.movi(0, 5);
    fb.movi(1, 1);
    fb.jnz(0, target);
    fb.movi(1, 2);
    fb.bind(target);
    fb.retval(1);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 1u);
}

TEST(VmOps, JzTakenOnZero)
{
    FunctionBuilder fb;
    int target = fb.new_label();
    fb.movi(0, 0);
    fb.movi(1, 1);
    fb.jz(0, target);
    fb.movi(1, 2);
    fb.bind(target);
    fb.retval(1);
    VmResult r = run_single(std::move(fb));
    EXPECT_EQ(r.entry_ret, 1u);
}

TEST(VmOps, GetArgOfUnsetEntrySlotYieldsOpaqueValue)
{
    FunctionBuilder fb;
    int target = fb.new_label();
    fb.getarg(0, 9); // entry slot nobody set
    fb.movi(1, 1);
    fb.jnz(0, target);
    fb.movi(1, 2);
    fb.bind(target);
    fb.retval(1);
    bir::BinaryImage image = single_function(std::move(fb));
    EXPECT_EQ(run_single(image, 1).entry_ret, 1u); // branch taken
    EXPECT_EQ(run_single(image, 0).entry_ret, 2u); // fall through
}

TEST(VmOps, BackwardLoopIsBoundedByBackjumpCap)
{
    // while (opaque) {} -- an unknown-cond backward branch. The
    // mirror takes it max_backjumps times, then forces fall-through
    // (symexec stops forking there, so running further would emit
    // events in windows the static side never explored).
    FunctionBuilder fb;
    int head = fb.new_label();
    fb.movi(1, 0);
    fb.bind(head);
    fb.getarg(0, 9);
    fb.add(1, 1, 1);
    fb.jnz(0, head);
    fb.retval(1);
    bir::BinaryImage image = single_function(std::move(fb));
    VmResult r = run_single(image, 1);
    // One initial pass + max_backjumps re-entries.
    EXPECT_EQ(r.entry_ret, 3u);
    EXPECT_EQ(r.stats.forced_fallthroughs, 1u);
    EXPECT_TRUE(r.traps.empty());
}

TEST(VmOps, FrameStepBudgetEndsFrameQuietly)
{
    // Constant-condition infinite loop: symexec follows it to its
    // per-path step cap and finishes the path; the VM mirrors that.
    FunctionBuilder fb;
    int head = fb.new_label();
    fb.movi(0, 1);
    fb.bind(head);
    fb.jnz(0, head);
    fb.retval(0);
    VmResult r = run_single(std::move(fb));
    EXPECT_TRUE(r.traps.empty());
    EXPECT_EQ(r.stats.frame_step_stops, 1u);
    EXPECT_EQ(r.stats.steps,
              static_cast<std::uint64_t>(VmConfig{}.max_steps));
}

TEST(VmOps, CallDepthCapSkipsCalleeQuietly)
{
    // f calls itself: recursion is cut at max_call_depth by skipping
    // the call (subset-safe), not by trapping.
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FunctionBuilder fb;
    fb.call(f);
    fb.getret(0);
    fb.retval(0);
    ib.define_function(f, std::move(fb));
    bir::BinaryImage image = ib.link({});
    VmResult r = run_single(image);
    EXPECT_TRUE(r.traps.empty());
    EXPECT_EQ(r.stats.depth_skips, 1u);
    EXPECT_EQ(r.stats.frames,
              static_cast<std::uint64_t>(VmConfig{}.max_call_depth));
}

// ---- one negative test per trap kind -------------------------------------

TEST(VmTraps, BadOpcode)
{
    FunctionBuilder fb;
    fb.ret();
    bir::BinaryImage image = single_function(std::move(fb));
    patch_op(image, image.functions[0].addr, 0xff);
    VmResult r = run_single(image);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::BadOpcode);
    EXPECT_EQ(r.traps[0].addr, image.functions[0].addr);
    EXPECT_EQ(r.traps[0].detail, 0xffu);
}

TEST(VmTraps, BadRegister)
{
    FunctionBuilder fb;
    fb.movi(0, 1);
    fb.ret();
    bir::BinaryImage image = single_function(std::move(fb));
    // movi's written register field `a` -> out of range.
    image.code[image.functions[0].addr - image.code_base + 1] = 0xff;
    VmResult r = run_single(image);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::BadRegister);
}

TEST(VmTraps, WildJump)
{
    FunctionBuilder fb;
    fb.nop();
    fb.ret();
    bir::BinaryImage image = single_function(std::move(fb));
    // Rewrite the nop into `jmp 0` -- target below the function.
    patch_op(image, image.functions[0].addr,
             static_cast<std::uint8_t>(bir::Op::Jmp));
    patch_imm(image, image.functions[0].addr, 0);
    VmResult r = run_single(image);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::WildJump);
    EXPECT_EQ(r.traps[0].detail, 0u);
}

TEST(VmTraps, WildCall)
{
    FunctionBuilder fb;
    fb.call_addr(0x5000); // no function, no stub
    fb.ret();
    VmResult r = run_single(std::move(fb));
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::WildCall);
    EXPECT_EQ(r.traps[0].detail, 0x5000u);
}

TEST(VmTraps, CallIndNonEntry)
{
    FunctionBuilder fb;
    fb.movi(0, bir::kCodeBase + bir::kInstrSize); // mid-function addr
    fb.icall(0);
    fb.ret();
    VmResult r = run_single(std::move(fb));
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::CallIndNonEntry);
}

TEST(VmTraps, OobVtableSlotThroughConstBase)
{
    ImageBuilder ib;
    FuncId m = ib.declare_function("method");
    FunctionBuilder fm;
    fm.ret();
    ib.define_function(m, std::move(fm));
    VtId vt = ib.add_vtable("V", 1);
    ib.set_slot(vt, 0, m);
    FuncId main = ib.declare_function("main");
    FunctionBuilder fb;
    fb.movi_vtable(0, vt);
    fb.movi(2, 0x5000);
    fb.store(2, 0, 0); // store-through-pointer: makes the scan see vt
    fb.load(1, 0, 8);  // slot 2 of a 1-slot vtable
    fb.ret();
    ib.define_function(main, std::move(fb));
    bir::BinaryImage image = ib.link({});

    auto analysis = analysis::analyze(image);
    Interpreter interp(image, analysis, VmConfig{});
    std::size_t main_index =
        image.functions[0].addr == ib.func_addr(main) ? 0 : 1;
    VmResult r = interp.run_entry(main_index, 0);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::OobVtableSlot);
    EXPECT_EQ(r.traps[0].detail, 2u);
}

TEST(VmTraps, OobVtableSlotThroughObjectVptr)
{
    ImageBuilder ib;
    FuncId m = ib.declare_function("method");
    FunctionBuilder fm;
    fm.ret();
    ib.define_function(m, std::move(fm));
    VtId vt = ib.add_vtable("V", 1);
    ib.set_slot(vt, 0, m);
    FuncId main = ib.declare_function("main");
    FunctionBuilder fb;
    fb.movi(0, 8);
    fb.setarg(0, 0);
    fb.call_addr(bir::kAllocStub);
    fb.getret(1);
    fb.movi_vtable(2, vt);
    fb.store(1, 0, 2); // vptr store
    fb.load(3, 1, 0);  // load vptr
    fb.load(4, 3, 8);  // dispatch read past the table end
    fb.ret();
    ib.define_function(main, std::move(fb));
    bir::BinaryImage image = ib.link({});

    auto analysis = analysis::analyze(image);
    Interpreter interp(image, analysis, VmConfig{});
    std::size_t main_index =
        image.functions[0].addr == ib.func_addr(main) ? 0 : 1;
    VmResult r = interp.run_entry(main_index, 0);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::OobVtableSlot);
}

TEST(VmTraps, Purecall)
{
    FunctionBuilder fb;
    fb.call_addr(bir::kPurecallStub);
    fb.ret();
    VmResult r = run_single(std::move(fb));
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::Purecall);
}

TEST(VmTraps, TrapNamesAreStable)
{
    EXPECT_STREQ(vm::trap_name(TrapKind::BadOpcode), "bad-opcode");
    EXPECT_STREQ(vm::trap_name(TrapKind::BadRegister), "bad-register");
    EXPECT_STREQ(vm::trap_name(TrapKind::WildJump), "wild-jump");
    EXPECT_STREQ(vm::trap_name(TrapKind::WildCall), "wild-call");
    EXPECT_STREQ(vm::trap_name(TrapKind::CallIndNonEntry),
                 "callind-non-entry");
    EXPECT_STREQ(vm::trap_name(TrapKind::OobVtableSlot),
                 "oob-vtable-slot");
    EXPECT_STREQ(vm::trap_name(TrapKind::Purecall), "purecall");
}

// ---- shadow-mirror event goldens -----------------------------------------

TEST(VmEvents, CtorAndDispatchEmitTypedVirtCallTracelet)
{
    // new V; v->slot0(): alloc, vptr store, dispatch -- the canonical
    // typed-tracelet producer. The dispatch also concretely enters
    // the method.
    ImageBuilder ib;
    FuncId m = ib.declare_function("method");
    FunctionBuilder fm;
    fm.getarg(0, 0);
    fm.ret();
    ib.define_function(m, std::move(fm));
    VtId vt = ib.add_vtable("V", 1);
    ib.set_slot(vt, 0, m);
    FuncId main = ib.declare_function("main");
    FunctionBuilder fb;
    fb.movi(0, 8);
    fb.setarg(0, 0);
    fb.call_addr(bir::kAllocStub);
    fb.getret(1);
    fb.movi_vtable(2, vt);
    fb.store(1, 0, 2); // install vptr
    fb.load(3, 1, 0);  // load vptr
    fb.load(4, 3, 0);  // load slot 0
    fb.setarg(0, 1);   // this
    fb.icall(4);       // virtual dispatch
    fb.ret();
    ib.define_function(main, std::move(fb));
    bir::BinaryImage image = ib.link({});

    auto analysis = analysis::analyze(image);
    Interpreter interp(image, analysis, VmConfig{});
    std::size_t main_index = 0;
    for (std::size_t i = 0; i < image.functions.size(); ++i) {
        if (image.functions[i].addr == ib.func_addr(main))
            main_index = i;
    }
    VmResult r = interp.run_entry(main_index, 0);
    EXPECT_TRUE(r.traps.empty());
    std::uint32_t type = ib.vtable_addr(vt);
    ASSERT_EQ(r.type_tracelets.count(type), 1u);
    analysis::Tracelet expected{
        Event{EventKind::VirtCall, 0, 0}};
    EXPECT_EQ(r.type_tracelets.at(type).front(), expected);
    // The dispatch actually entered the method's frame.
    EXPECT_EQ(r.stats.calls, 1u);
    EXPECT_EQ(r.stats.frames, 2u);
}

TEST(VmEvents, NullVptrDispatchIsCountedSkipNotTrap)
{
    // A method run standalone dispatches through its synthesized
    // `this`, whose vptr was never initialized: the VirtCall event
    // still records, the concrete call is skipped.
    ImageBuilder ib;
    FuncId m = ib.declare_function("method");
    VtId vt = ib.add_vtable("V", 1);
    ib.set_slot(vt, 0, m);
    FunctionBuilder fm;
    fm.getarg(0, 0);
    fm.load(1, 0, 0); // load (null) vptr
    fm.load(2, 1, 0); // load slot 0
    fm.setarg(0, 0);
    fm.icall(2);
    fm.ret();
    ib.define_function(m, std::move(fm));
    // A ctor-like materialize+store of the vtable address so the
    // scan discovers it (and hence `method` is a this-callee).
    FuncId init = ib.declare_function("init");
    FunctionBuilder fi;
    fi.getarg(0, 0);
    fi.movi_vtable(1, vt);
    fi.store(0, 0, 1);
    fi.ret();
    ib.define_function(init, std::move(fi));
    bir::BinaryImage image = ib.link({});

    auto analysis = analysis::analyze(image);
    Interpreter interp(image, analysis, VmConfig{});
    VmResult r = interp.run_entry(0, 0);
    EXPECT_TRUE(r.traps.empty());
    EXPECT_EQ(r.stats.skipped_indirect, 1u);
    std::uint32_t type = ib.vtable_addr(vt);
    ASSERT_EQ(r.type_tracelets.count(type), 1u);
    analysis::Tracelet expected{
        Event{EventKind::VirtCall, 0, 0}};
    EXPECT_EQ(r.type_tracelets.at(type).front(), expected);
}

// ---- determinism ---------------------------------------------------------

TEST(VmDeterminism, BitIdenticalAcrossRunsAndThreadCounts)
{
    corpus::CorpusProgram prog = corpus::echoparams_program();
    toyc::CompileResult built =
        toyc::compile(prog.program, prog.options);
    auto analysis = analysis::analyze(built.image);
    Interpreter interp(built.image, analysis, VmConfig{});

    VmResult serial = interp.run_image(1);
    VmResult again = interp.run_image(1);
    VmResult two = interp.run_image(2);
    VmResult hw = interp.run_image(0);
    EXPECT_TRUE(serial == again);
    EXPECT_TRUE(serial == two);
    EXPECT_TRUE(serial == hw);
    EXPECT_GT(serial.stats.steps, 0u);
    EXPECT_GT(serial.coverage.size(), 0u);
}

// ---- coverage fingerprints -----------------------------------------------

TEST(VmCoverage, FingerprintsAreLayoutInsensitive)
{
    // Same structure, different layout: pad one image with an extra
    // function so every address moves. Block fingerprints of the
    // structurally identical function must coincide.
    auto build = [](bool pad) {
        ImageBuilder ib;
        if (pad) {
            FuncId p = ib.declare_function("pad");
            FunctionBuilder fp;
            fp.nop();
            fp.nop();
            fp.ret();
            ib.define_function(p, std::move(fp));
        }
        FuncId l = ib.declare_function("leaf");
        FunctionBuilder fl;
        fl.movi(0, 5);
        fl.retval(0);
        ib.define_function(l, std::move(fl));
        FuncId f = ib.declare_function("f");
        FunctionBuilder fb;
        fb.call(l); // address-bearing imm: normalized away
        fb.getret(0);
        fb.retval(0);
        ib.define_function(f, std::move(fb));
        return ib.link({});
    };
    bir::BinaryImage a = build(false);
    bir::BinaryImage b = build(true);
    ASSERT_NE(a.functions.size(), b.functions.size());

    auto fps = [](const bir::BinaryImage& image) {
        std::set<std::uint64_t> out;
        for (const auto& fn : image.functions) {
            cfg::Cfg cfg = cfg::build_cfg(image, fn);
            for (std::uint64_t fp :
                 vm::function_fingerprints(image, cfg))
                out.insert(fp);
        }
        return out;
    };
    std::set<std::uint64_t> fa = fps(a);
    std::set<std::uint64_t> fb_set = fps(b);
    // Every block of the unpadded image also exists in the padded one.
    for (std::uint64_t fp : fa)
        EXPECT_EQ(fb_set.count(fp), 1u) << "fingerprint moved";
    // And the pad function contributes something new.
    EXPECT_GT(fb_set.size(), fa.size());
}

TEST(VmCoverage, DifferentConstantsFingerprintDifferently)
{
    auto one = [](std::uint32_t k) {
        FunctionBuilder fb;
        fb.movi(0, k);
        fb.retval(0);
        bir::BinaryImage image = single_function(std::move(fb));
        cfg::Cfg cfg = cfg::build_cfg(image, image.functions[0]);
        return vm::function_fingerprints(image, cfg).at(0);
    };
    EXPECT_NE(one(7), one(8));
    EXPECT_EQ(one(7), one(7));
}

// ---- tracelet JSONL schema v1 --------------------------------------------

TEST(VmTrace, JsonlRoundTripsWholeImageTrace)
{
    corpus::CorpusProgram prog = corpus::streams_program();
    toyc::CompileResult built =
        toyc::compile(prog.program, prog.options);
    auto analysis = analysis::analyze(built.image);
    Interpreter interp(built.image, analysis, VmConfig{});
    VmResult r = interp.run_image(1);
    ASSERT_FALSE(r.records.empty());

    std::string jsonl = vm::to_jsonl(r);
    std::string error;
    auto parsed = vm::parse_trace(jsonl, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, r.records);
}

TEST(VmTrace, ParserRejectsSchemaViolations)
{
    vm::TraceRecord rec;
    rec.entry = 0x1000;
    rec.opaque = 1;
    rec.type = 0x100010;
    rec.tracelet.push_back(Event{EventKind::VirtCall, 2, 0});
    std::string good = vm::to_jsonl(rec);
    ASSERT_TRUE(vm::parse_trace_line(good).has_value());
    auto round = vm::parse_trace_line(good);
    EXPECT_EQ(*round, rec);

    std::string error;
    EXPECT_FALSE(vm::parse_trace_line("{}", &error).has_value());
    EXPECT_FALSE(
        vm::parse_trace_line(
            "{\"rockvm_tracelet\":2,\"entry\":0,\"opaque\":0,"
            "\"type\":0,\"events\":[]}",
            &error)
            .has_value());
    EXPECT_FALSE(
        vm::parse_trace_line(
            "{\"rockvm_tracelet\":1,\"entry\":0,\"opaque\":0,"
            "\"type\":0,\"events\":[[\"X\",0,0]]}",
            &error)
            .has_value());
    EXPECT_FALSE(vm::parse_trace_line(good + " junk", &error)
                     .has_value());
    EXPECT_FALSE(
        vm::parse_trace_line(
            "{\"rockvm_tracelet\":1,\"entry\":0,\"opaque\":0,"
            "\"type\":0,\"events\":[],\"extra\":1}",
            &error)
            .has_value());
    // Missing version tag.
    EXPECT_FALSE(
        vm::parse_trace_line("{\"entry\":0,\"opaque\":0,\"type\":0,"
                             "\"events\":[]}",
                             &error)
            .has_value());
}

TEST(VmTrace, ConfigMirrorCopiesMirrorKnobs)
{
    analysis::SymExecConfig se;
    se.tracelet_len = 5;
    se.max_steps = 100;
    se.max_backjumps = 1;
    se.sliding_windows = true;
    se.attribute_shared_methods_to_all = false;
    VmConfig c = VmConfig::mirror(se);
    EXPECT_EQ(c.tracelet_len, 5);
    EXPECT_EQ(c.max_steps, 100);
    EXPECT_EQ(c.max_backjumps, 1);
    EXPECT_TRUE(c.sliding_windows);
    EXPECT_FALSE(c.attribute_shared_methods_to_all);
}

} // namespace

/**
 * @file
 * Unit and property tests for the graph module: union-find,
 * Chu-Liu/Edmonds, and co-optimal enumeration.
 */
#include <gtest/gtest.h>

#include <limits>

#include "support/error.h"
#include "graph/digraph.h"
#include "graph/edmonds.h"
#include "graph/enumerate.h"
#include "graph/union_find.h"
#include "support/rng.h"

namespace {

using namespace rock::graph;

// ---------------------------------------------------------------------
// Union-find / components
// ---------------------------------------------------------------------

TEST(UnionFind, BasicMerging)
{
    UnionFind uf(5);
    EXPECT_FALSE(uf.same(0, 1));
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(0, 1));
    EXPECT_TRUE(uf.same(0, 1));
    uf.unite(2, 3);
    EXPECT_FALSE(uf.same(1, 2));
    uf.unite(1, 2);
    EXPECT_TRUE(uf.same(0, 3));
    EXPECT_FALSE(uf.same(0, 4));
}

TEST(Components, LabelsAreDenseAndOrdered)
{
    auto labels = connected_components(6, {{0, 2}, {2, 4}, {1, 5}});
    EXPECT_EQ(labels[0], 0);
    EXPECT_EQ(labels[2], 0);
    EXPECT_EQ(labels[4], 0);
    EXPECT_EQ(labels[1], 1);
    EXPECT_EQ(labels[5], 1);
    EXPECT_EQ(labels[3], 2);
}

TEST(Components, NoEdgesMeansSingletons)
{
    auto labels = connected_components(3, {});
    EXPECT_EQ(labels, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------
// Edmonds
// ---------------------------------------------------------------------

TEST(Edmonds, TrivialChain)
{
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    auto arb = min_arborescence(g, 0);
    ASSERT_TRUE(arb.has_value());
    EXPECT_EQ(arb->parent, (std::vector<int>{-1, 0, 1}));
    EXPECT_DOUBLE_EQ(arb->weight, 3.0);
}

TEST(Edmonds, PrefersCheaperParent)
{
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 2, 5.0);
    g.add_edge(1, 2, 1.0);
    auto arb = min_arborescence(g, 0);
    ASSERT_TRUE(arb.has_value());
    EXPECT_EQ(arb->parent[2], 1);
    EXPECT_DOUBLE_EQ(arb->weight, 2.0);
}

TEST(Edmonds, ResolvesCycle)
{
    // Greedy in-edges 1<->2 form a cycle; the algorithm must break it
    // through the root.
    Digraph g(3);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 1, 1.0);
    g.add_edge(0, 1, 10.0);
    g.add_edge(0, 2, 10.0);
    auto arb = min_arborescence(g, 0);
    ASSERT_TRUE(arb.has_value());
    // One of the cheap cycle edges survives; one root edge enters.
    EXPECT_DOUBLE_EQ(arb->weight, 11.0);
    int root_children = 0;
    for (int v = 1; v < 3; ++v) {
        if (arb->parent[v] == 0)
            ++root_children;
    }
    EXPECT_EQ(root_children, 1);
}

TEST(Edmonds, UnreachableNodeFails)
{
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    EXPECT_FALSE(min_arborescence(g, 0).has_value());
}

TEST(Edmonds, NestedCycles)
{
    // A 3-cycle of cheap edges plus expensive entries.
    Digraph g(4);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(3, 1, 1.0);
    g.add_edge(0, 1, 100.0);
    g.add_edge(0, 2, 50.0);
    g.add_edge(0, 3, 100.0);
    auto arb = min_arborescence(g, 0);
    ASSERT_TRUE(arb.has_value());
    // Enter the cycle at 2 (cheapest), keep 2->3->1.
    EXPECT_EQ(arb->parent[2], 0);
    EXPECT_EQ(arb->parent[3], 2);
    EXPECT_EQ(arb->parent[1], 3);
    EXPECT_DOUBLE_EQ(arb->weight, 52.0);
}

/** Brute-force minimum spanning arborescence via enumeration. */
double
brute_force_weight(const Digraph& g, int root)
{
    // Try all parent assignments.
    const int n = g.num_nodes();
    std::vector<std::vector<std::pair<int, double>>> in(
        static_cast<std::size_t>(n));
    for (const auto& e : g.edges())
        in[static_cast<std::size_t>(e.dst)].push_back(
            {e.src, e.weight});
    double best = std::numeric_limits<double>::infinity();
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    auto rec = [&](auto&& self, int v, double cost) -> void {
        if (v == n) {
            // Verify: all nodes reach the root.
            for (int u = 0; u < n; ++u) {
                int cur = u;
                int steps = 0;
                while (cur != root && steps <= n) {
                    cur = parent[static_cast<std::size_t>(cur)];
                    ++steps;
                    if (cur < 0)
                        return;
                }
                if (cur != root)
                    return;
            }
            best = std::min(best, cost);
            return;
        }
        if (v == root) {
            self(self, v + 1, cost);
            return;
        }
        for (const auto& [src, w] : in[static_cast<std::size_t>(v)]) {
            parent[static_cast<std::size_t>(v)] = src;
            self(self, v + 1, cost + w);
        }
        parent[static_cast<std::size_t>(v)] = -1;
    };
    rec(rec, 0, 0.0);
    return best;
}

class EdmondsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdmondsRandom, MatchesBruteForce)
{
    rock::support::Rng rng(GetParam());
    const int n = 2 + static_cast<int>(rng.index(5));
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u != v && rng.chance(0.7)) {
                g.add_edge(u, v,
                           static_cast<double>(rng.uniform(1, 20)));
            }
        }
    }
    double brute = brute_force_weight(g, 0);
    auto arb = min_arborescence(g, 0);
    if (std::isinf(brute)) {
        EXPECT_FALSE(arb.has_value());
    } else {
        ASSERT_TRUE(arb.has_value());
        EXPECT_NEAR(arb->weight, brute, 1e-9);
        // The returned parent vector must itself be a spanning
        // arborescence with the claimed weight.
        double total = 0.0;
        for (int v = 0; v < n; ++v) {
            int p = arb->parent[static_cast<std::size_t>(v)];
            if (v == 0) {
                EXPECT_EQ(p, -1);
                continue;
            }
            ASSERT_GE(p, 0);
            double cheapest =
                std::numeric_limits<double>::infinity();
            for (const auto& e : g.edges()) {
                if (e.src == p && e.dst == v)
                    cheapest = std::min(cheapest, e.weight);
            }
            total += cheapest;
        }
        EXPECT_NEAR(total, brute, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdmondsRandom,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------
// min_forest
// ---------------------------------------------------------------------

TEST(MinForest, SingleRootWhenConnected)
{
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 2, 1.0);
    g.add_edge(1, 2, 0.5);
    Arborescence forest = min_forest(g);
    EXPECT_EQ(forest.num_roots, 1);
    EXPECT_EQ(forest.parent[0], -1);
    EXPECT_EQ(forest.parent[1], 0);
    EXPECT_EQ(forest.parent[2], 1);
    EXPECT_DOUBLE_EQ(forest.weight, 1.5);
}

TEST(MinForest, DisconnectedGraphYieldsMultipleRoots)
{
    Digraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 1.0);
    Arborescence forest = min_forest(g);
    EXPECT_EQ(forest.num_roots, 2);
    EXPECT_EQ(forest.parent[1], 0);
    EXPECT_EQ(forest.parent[3], 2);
}

TEST(MinForest, PenaltyDominatesEdgeWeights)
{
    // Even a very expensive real edge beats becoming a root
    // (Heuristic 4.1: prefer derived over root).
    Digraph g(2);
    g.add_edge(0, 1, 1e6);
    Arborescence forest = min_forest(g);
    EXPECT_EQ(forest.num_roots, 1);
    EXPECT_EQ(forest.parent[1], 0);
}

TEST(MinForest, EmptyGraph)
{
    Digraph g(0);
    Arborescence forest = min_forest(g);
    EXPECT_EQ(forest.num_roots, 0);
    EXPECT_TRUE(forest.parent.empty());
}

TEST(MinForest, NoEdgesAllRoots)
{
    Digraph g(3);
    Arborescence forest = min_forest(g);
    EXPECT_EQ(forest.num_roots, 3);
}

// ---------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------

TEST(Enumerate, FindsAllCoOptimalForests)
{
    // Symmetric pair: either direction is optimal.
    Digraph g(2);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 0, 1.0);
    auto forests = enumerate_min_forests(g);
    EXPECT_EQ(forests.size(), 2u);
}

TEST(Enumerate, CompleteSymmetricStarCounts)
{
    // Complete digraph on 4 nodes with equal weights: n^(n-1) = 64
    // spanning arborescences (the echoparams count).
    Digraph g(4);
    for (int u = 0; u < 4; ++u) {
        for (int v = 0; v < 4; ++v) {
            if (u != v)
                g.add_edge(u, v, 1.0);
        }
    }
    EnumerateConfig config;
    config.max_results = 1000;
    auto forests = enumerate_min_forests(g, config);
    EXPECT_EQ(forests.size(), 64u);
}

TEST(Enumerate, UniqueOptimumYieldsOneForest)
{
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 2, 2.0);
    g.add_edge(1, 2, 1.0);
    auto forests = enumerate_min_forests(g);
    ASSERT_EQ(forests.size(), 1u);
    EXPECT_EQ(forests[0].parent, (std::vector<int>{-1, 0, 1}));
}

TEST(Enumerate, FirstResultIsOptimal)
{
    rock::support::Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const int n = 2 + static_cast<int>(rng.index(4));
        Digraph g(n);
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.chance(0.8)) {
                    g.add_edge(
                        u, v,
                        static_cast<double>(rng.uniform(1, 9)));
                }
            }
        }
        Arborescence best = min_forest(g);
        auto forests = enumerate_min_forests(g);
        ASSERT_FALSE(forests.empty());
        EXPECT_NEAR(forests[0].weight, best.weight, 1e-9);
        EXPECT_EQ(forests[0].num_roots, best.num_roots);
    }
}

TEST(Enumerate, RespectsMaxResults)
{
    Digraph g(4);
    for (int u = 0; u < 4; ++u) {
        for (int v = 0; v < 4; ++v) {
            if (u != v)
                g.add_edge(u, v, 1.0);
        }
    }
    EnumerateConfig config;
    config.max_results = 10;
    auto forests = enumerate_min_forests(g, config);
    EXPECT_EQ(forests.size(), 10u);
}

TEST(Enumerate, EpsilonAdmitsNearOptimal)
{
    Digraph g(2);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 0, 1.5);
    EnumerateConfig tight;
    EXPECT_EQ(enumerate_min_forests(g, tight).size(), 1u);
    EnumerateConfig loose;
    loose.epsilon = 1.0;
    EXPECT_EQ(enumerate_min_forests(g, loose).size(), 2u);
}

TEST(Digraph, RejectsBadEdges)
{
    Digraph g(2);
    EXPECT_THROW(g.add_edge(0, 0, 1.0), rock::support::PanicError);
    EXPECT_THROW(g.add_edge(0, 5, 1.0), rock::support::PanicError);
}

} // namespace

/**
 * @file
 * Byte-identity property tests for the flat arena ContextTrie.
 *
 * The arena rewrite (src/slm/context_trie.h) replaced the original
 * pointer-per-node / std::map trie to make the SLM/DKL hot path read
 * contiguous arrays. Its contract is strict: every probability any
 * model family computes over the flat trie must be *byte-identical*
 * (memcmp on the doubles, not approximately equal) to the pointer
 * implementation, because hierarchy selection compares summed DKL
 * weights and the determinism suite pins results across thread
 * counts.
 *
 * This file keeps a test-local copy of the original pointer trie and
 * the original PPM/Katz probability computations (verbatim modulo
 * the obs counter, which does not touch the arithmetic) and checks
 * equality across:
 *  - sampled random corpora x {alphabet, depth, escape method,
 *    exclusion} for PPM (both the finalized fast path and the
 *    pre-finalize general path),
 *  - sampled random corpora x {alphabet, depth, threshold} for Katz,
 *  - DKL values through divergence::kl_divergence,
 *  - corpora from sampled GeneratorSpecs pushed through the real
 *    pipeline (the models reconstruct() trains and ships).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "corpus/generator.h"
#include "divergence/metrics.h"
#include "rock/pipeline.h"
#include "slm/katz.h"
#include "slm/model.h"
#include "slm/ppm.h"
#include "support/rng.h"
#include "toyc/compiler.h"

namespace {

using rock::slm::EscapeMethod;

// ---------------------------------------------------------------------
// Reference implementation: the original pointer-based trie and the
// original PPM/Katz math, kept here as the oracle.
// ---------------------------------------------------------------------

struct RefTrie {
    struct Node {
        std::map<int, int> counts;
        long total = 0;
        std::map<int, std::unique_ptr<Node>> children;
    };

    explicit RefTrie(int depth) : depth(depth) {}

    void add_sequence(const std::vector<int>& seq)
    {
        for (std::size_t i = 0; i < seq.size(); ++i) {
            int symbol = seq[i];
            Node* node = &root;
            node->counts[symbol] += 1;
            node->total += 1;
            for (int k = 1;
                 k <= depth && k <= static_cast<int>(i); ++k) {
                int ctx = seq[i - static_cast<std::size_t>(k)];
                auto& child = node->children[ctx];
                if (!child)
                    child = std::make_unique<Node>();
                node = child.get();
                node->counts[symbol] += 1;
                node->total += 1;
            }
        }
    }

    void context_chain(const std::vector<int>& context,
                       std::vector<const Node*>& chain) const
    {
        chain.push_back(&root);
        const Node* node = &root;
        int limit =
            std::min<int>(depth, static_cast<int>(context.size()));
        for (int k = 1; k <= limit; ++k) {
            int ctx =
                context[context.size() - static_cast<std::size_t>(k)];
            auto it = node->children.find(ctx);
            if (it == node->children.end())
                break;
            node = it->second.get();
            chain.push_back(node);
        }
    }

    std::vector<std::map<int, long>> count_of_counts() const
    {
        std::vector<std::map<int, long>> result(
            static_cast<std::size_t>(depth) + 1);
        auto walk = [&](auto&& self, const Node& node,
                        int order) -> void {
            for (const auto& [symbol, count] : node.counts) {
                (void)symbol;
                result[static_cast<std::size_t>(order)][count] += 1;
            }
            if (order < depth) {
                for (const auto& [symbol, child] : node.children) {
                    (void)symbol;
                    self(self, *child, order + 1);
                }
            }
        };
        walk(walk, root, 0);
        return result;
    }

    int depth;
    Node root;
};

/** The original PpmModel::prob, against a RefTrie. */
class RefPpm final : public rock::slm::LanguageModel {
  public:
    RefPpm(int alphabet_size, int depth, bool exclusion,
           EscapeMethod escape)
        : trie_(depth), alphabet_size_(alphabet_size),
          exclusion_(exclusion), escape_(escape)
    {
    }

    void train(const std::vector<int>& seq) override
    {
        trie_.add_sequence(seq);
    }

    int alphabet_size() const override { return alphabet_size_; }

    double prob(int symbol,
                const std::vector<int>& context) const override
    {
        std::vector<const RefTrie::Node*> chain;
        trie_.context_chain(context, chain);

        double escape_acc = 1.0;
        std::set<int> excluded;
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            const RefTrie::Node& node = **it;
            long total = node.total;
            long distinct = static_cast<long>(node.counts.size());
            if (exclusion_ && !excluded.empty()) {
                for (int ex : excluded) {
                    auto found = node.counts.find(ex);
                    if (found != node.counts.end()) {
                        total -= found->second;
                        --distinct;
                    }
                }
            }
            if (total <= 0 || distinct <= 0)
                continue;
            long remaining = alphabet_size_;
            if (exclusion_)
                remaining -= static_cast<long>(excluded.size());
            bool covers = distinct >= remaining;

            auto found = node.counts.find(symbol);
            bool usable = found != node.counts.end() &&
                          (!exclusion_ || !excluded.count(symbol));
            double sym_p = 0.0;
            double esc_p = 0.0;
            double count =
                usable ? static_cast<double>(found->second) : 0.0;
            double n = static_cast<double>(total);
            double q = static_cast<double>(distinct);
            if (covers) {
                sym_p = count / n;
                esc_p = 0.0;
            } else {
                switch (escape_) {
                  case EscapeMethod::A:
                    sym_p = count / (n + 1.0);
                    esc_p = 1.0 / (n + 1.0);
                    break;
                  case EscapeMethod::C:
                    sym_p = count / (n + q);
                    esc_p = q / (n + q);
                    break;
                  case EscapeMethod::D:
                    sym_p = (2.0 * count - 1.0) / (2.0 * n);
                    esc_p = q / (2.0 * n);
                    break;
                }
            }
            if (usable)
                return escape_acc * sym_p;
            escape_acc *= esc_p;
            if (exclusion_) {
                for (const auto& [seen, c] : node.counts) {
                    (void)c;
                    excluded.insert(seen);
                }
            }
        }
        long remaining = alphabet_size_;
        if (exclusion_)
            remaining -= static_cast<long>(excluded.size());
        return escape_acc / static_cast<double>(remaining);
    }

  private:
    RefTrie trie_;
    int alphabet_size_;
    bool exclusion_;
    EscapeMethod escape_;
};

/** The original KatzModel, against a RefTrie. */
class RefKatz final : public rock::slm::LanguageModel {
  public:
    RefKatz(int alphabet_size, int depth, int threshold)
        : trie_(depth), alphabet_size_(alphabet_size),
          threshold_(threshold)
    {
    }

    void train(const std::vector<int>& seq) override
    {
        trie_.add_sequence(seq);
        coc_valid_ = false;
    }

    int alphabet_size() const override { return alphabet_size_; }

    double prob(int symbol,
                const std::vector<int>& context) const override
    {
        if (!coc_valid_) {
            coc_ = trie_.count_of_counts();
            coc_valid_ = true;
        }
        std::vector<const RefTrie::Node*> chain;
        trie_.context_chain(context, chain);
        std::vector<const RefTrie::Node*> reversed(chain.rbegin(),
                                                   chain.rend());
        return prob_at(reversed, 0, symbol);
    }

  private:
    double discount(int order, int r) const
    {
        if (r > threshold_)
            return 1.0;
        const auto& table = coc_[static_cast<std::size_t>(order)];
        auto nr = table.find(r);
        auto nr1 = table.find(r + 1);
        if (nr == table.end() || nr1 == table.end() ||
            nr->second == 0)
            return 1.0;
        double r_star = static_cast<double>(r + 1) *
                        static_cast<double>(nr1->second) /
                        static_cast<double>(nr->second);
        double d = r_star / static_cast<double>(r);
        if (d <= 0.0 || d >= 1.0)
            return 1.0;
        return d;
    }

    double prob_at(const std::vector<const RefTrie::Node*>& chain,
                   std::size_t level, int symbol) const
    {
        if (level >= chain.size())
            return 1.0 / static_cast<double>(alphabet_size_);
        const RefTrie::Node& node = *chain[level];
        int order = static_cast<int>(chain.size() - 1 - level);

        auto found = node.counts.find(symbol);
        if (found != node.counts.end()) {
            double d = discount(order, found->second);
            return d * static_cast<double>(found->second) /
                   static_cast<double>(node.total);
        }
        double seen_mass = 0.0;
        double lower_seen = 0.0;
        for (const auto& [sym, count] : node.counts) {
            seen_mass += discount(order, count) *
                         static_cast<double>(count) /
                         static_cast<double>(node.total);
            lower_seen += prob_at(chain, level + 1, sym);
        }
        double leftover = 1.0 - seen_mass;
        if (leftover <= 0.0)
            leftover = 1e-12;
        double lower_unseen = 1.0 - lower_seen;
        if (lower_unseen <= 1e-12)
            lower_unseen = 1e-12;
        double alpha = leftover / lower_unseen;
        return alpha * prob_at(chain, level + 1, symbol);
    }

    RefTrie trie_;
    int alphabet_size_;
    int threshold_;
    mutable std::vector<std::map<int, long>> coc_;
    mutable bool coc_valid_ = false;
};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

bool
bit_identical(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<std::vector<int>>
random_corpus(rock::support::Rng& rng, int alphabet, int sequences,
              int max_len)
{
    std::vector<std::vector<int>> corpus;
    corpus.reserve(static_cast<std::size_t>(sequences));
    for (int s = 0; s < sequences; ++s) {
        int len = static_cast<int>(rng.uniform(1, max_len));
        std::vector<int> seq;
        seq.reserve(static_cast<std::size_t>(len));
        for (int i = 0; i < len; ++i)
            seq.push_back(static_cast<int>(
                rng.index(static_cast<std::size_t>(alphabet))));
        corpus.push_back(std::move(seq));
    }
    return corpus;
}

/** Query contexts: every training suffix up to length 3 plus random
 *  (mostly unseen) contexts, including the empty context. */
std::vector<std::vector<int>>
query_contexts(const std::vector<std::vector<int>>& corpus,
               rock::support::Rng& rng, int alphabet)
{
    std::vector<std::vector<int>> contexts;
    contexts.push_back({});
    for (const auto& seq : corpus) {
        for (std::size_t end = 1; end <= seq.size(); ++end) {
            for (std::size_t len = 1; len <= 3 && len <= end; ++len)
                contexts.emplace_back(seq.begin() +
                                          static_cast<long>(end - len),
                                      seq.begin() +
                                          static_cast<long>(end));
        }
    }
    for (int i = 0; i < 16; ++i) {
        std::vector<int> ctx;
        int len = static_cast<int>(rng.uniform(1, 4));
        for (int k = 0; k < len; ++k)
            ctx.push_back(static_cast<int>(
                rng.index(static_cast<std::size_t>(alphabet))));
        contexts.push_back(std::move(ctx));
    }
    // Many suffixes repeat; thin the list for test runtime.
    std::sort(contexts.begin(), contexts.end());
    contexts.erase(std::unique(contexts.begin(), contexts.end()),
                   contexts.end());
    return contexts;
}

void
expect_models_identical(const rock::slm::LanguageModel& flat,
                        const rock::slm::LanguageModel& ref,
                        const std::vector<std::vector<int>>& contexts,
                        int alphabet, const char* what)
{
    for (const auto& ctx : contexts) {
        for (int sym = 0; sym < alphabet; ++sym) {
            double got = flat.prob(sym, ctx);
            double want = ref.prob(sym, ctx);
            ASSERT_TRUE(bit_identical(got, want))
                << what << ": prob mismatch at sym " << sym
                << " ctx size " << ctx.size() << ": flat " << got
                << " vs pointer " << want;
        }
    }
}

// ---------------------------------------------------------------------
// PPM: flat arena == pointer oracle, bit for bit
// ---------------------------------------------------------------------

TEST(FlatTrie, PpmByteIdenticalAcrossConfigs)
{
    int cases = 0;
    for (int alphabet : {3, 8, 17}) {
        for (int depth : {1, 2, 3}) {
            for (EscapeMethod escape :
                 {EscapeMethod::A, EscapeMethod::C, EscapeMethod::D}) {
                for (bool exclusion : {false, true}) {
                    rock::support::Rng rng(
                        static_cast<std::uint64_t>(
                            1000 * alphabet + 100 * depth +
                            10 * static_cast<int>(escape) +
                            (exclusion ? 1 : 0)));
                    auto corpus =
                        random_corpus(rng, alphabet, 24, 12);
                    auto contexts =
                        query_contexts(corpus, rng, alphabet);

                    rock::slm::PpmModel flat(alphabet, depth,
                                             exclusion, escape);
                    RefPpm ref(alphabet, depth, exclusion, escape);
                    for (const auto& seq : corpus) {
                        flat.train(seq);
                        ref.train(seq);
                    }

                    // Pre-finalize: the general walk over the arena.
                    expect_models_identical(flat, ref, contexts,
                                            alphabet,
                                            "ppm general path");
                    // Post-finalize: the precomputed-vector fast
                    // path (or, with exclusion, still the general
                    // walk -- either way the same bits).
                    flat.finalize();
                    expect_models_identical(flat, ref, contexts,
                                            alphabet,
                                            "ppm finalized path");

                    // Training again un-finalizes and both paths
                    // still agree after re-finalizing.
                    std::vector<int> extra;
                    for (int i = 0; i < 6; ++i)
                        extra.push_back(static_cast<int>(rng.index(
                            static_cast<std::size_t>(alphabet))));
                    flat.train(extra);
                    ref.train(extra);
                    expect_models_identical(
                        flat, ref, contexts, alphabet,
                        "ppm retrained general path");
                    flat.finalize();
                    expect_models_identical(
                        flat, ref, contexts, alphabet,
                        "ppm retrained finalized path");
                    ++cases;
                }
            }
        }
    }
    EXPECT_EQ(cases, 54);
}

// ---------------------------------------------------------------------
// Katz: flat arena == pointer oracle, bit for bit
// ---------------------------------------------------------------------

TEST(FlatTrie, KatzByteIdenticalAcrossConfigs)
{
    for (int alphabet : {4, 11}) {
        for (int depth : {1, 2, 3}) {
            for (int threshold : {1, 5}) {
                rock::support::Rng rng(static_cast<std::uint64_t>(
                    7000 + 100 * alphabet + 10 * depth + threshold));
                auto corpus = random_corpus(rng, alphabet, 24, 12);
                auto contexts = query_contexts(corpus, rng, alphabet);

                rock::slm::KatzModel flat(alphabet, depth, threshold);
                RefKatz ref(alphabet, depth, threshold);
                for (const auto& seq : corpus) {
                    flat.train(seq);
                    ref.train(seq);
                }

                // Lazy count-of-counts path, then the eager
                // finalized one.
                expect_models_identical(flat, ref, contexts, alphabet,
                                        "katz lazy path");
                flat.finalize();
                expect_models_identical(flat, ref, contexts, alphabet,
                                        "katz finalized path");
            }
        }
    }
}

// ---------------------------------------------------------------------
// DKL through the real divergence code
// ---------------------------------------------------------------------

TEST(FlatTrie, KlDivergenceByteIdentical)
{
    const int alphabet = 9;
    for (int depth : {1, 2}) {
        rock::support::Rng rng(
            static_cast<std::uint64_t>(31337 + depth));
        auto corpus_a = random_corpus(rng, alphabet, 20, 10);
        auto corpus_b = random_corpus(rng, alphabet, 20, 10);

        rock::slm::PpmModel flat_a(alphabet, depth, false,
                                   EscapeMethod::C);
        rock::slm::PpmModel flat_b(alphabet, depth, false,
                                   EscapeMethod::C);
        RefPpm ref_a(alphabet, depth, false, EscapeMethod::C);
        RefPpm ref_b(alphabet, depth, false, EscapeMethod::C);
        for (const auto& seq : corpus_a) {
            flat_a.train(seq);
            ref_a.train(seq);
        }
        for (const auto& seq : corpus_b) {
            flat_b.train(seq);
            ref_b.train(seq);
        }
        flat_a.finalize();
        flat_b.finalize();

        // The pipeline's word set: union of observed tracelets.
        std::vector<std::vector<int>> all = corpus_a;
        all.insert(all.end(), corpus_b.begin(), corpus_b.end());
        rock::divergence::WordSet words =
            rock::divergence::sorted_unique_words(all);

        double flat_kl =
            rock::divergence::kl_divergence(flat_a, flat_b, words);
        double ref_kl =
            rock::divergence::kl_divergence(ref_a, ref_b, words);
        ASSERT_TRUE(bit_identical(flat_kl, ref_kl))
            << "DKL differs at depth " << depth << ": " << flat_kl
            << " vs " << ref_kl;

        double flat_js =
            rock::divergence::js_divergence(flat_a, flat_b, words);
        double ref_js =
            rock::divergence::js_divergence(ref_a, ref_b, words);
        ASSERT_TRUE(bit_identical(flat_js, ref_js));
    }
}

// ---------------------------------------------------------------------
// End to end: the models the pipeline actually ships
// ---------------------------------------------------------------------

TEST(FlatTrie, PipelineModelsMatchPointerOracle)
{
    using namespace rock;
    for (std::uint64_t seed : {7u, 99u}) {
        corpus::GeneratorSpec spec;
        spec.num_classes = 14;
        spec.num_trees = 3;
        spec.max_depth = 3;
        spec.scenarios_per_class = 2;
        spec.seed = seed;
        toyc::CompileResult compiled =
            toyc::compile(corpus::generate_program(spec));

        core::RockConfig config;
        core::ReconstructionResult result =
            core::reconstruct(compiled.image, config);
        ASSERT_FALSE(result.models.empty());
        ASSERT_EQ(result.models.size(), result.type_sequences.size());

        support::Rng rng(seed);
        for (std::size_t t = 0; t < result.models.size(); ++t) {
            const auto& model = *result.models[t];
            const int alphabet = model.alphabet_size();
            // Re-train the pointer oracle exactly as train_model
            // trains the shipped model (RockConfig defaults: PPM-C,
            // depth 2, no exclusion).
            RefPpm ref(alphabet, config.slm.depth,
                       config.slm.exclusion, config.slm.escape);
            for (const auto& seq : result.type_sequences[t])
                ref.train(seq);

            auto contexts = query_contexts(result.type_sequences[t],
                                           rng, alphabet);
            expect_models_identical(model, ref, contexts, alphabet,
                                    "pipeline model");
        }
    }
}

} // namespace

/**
 * @file
 * Multiple-inheritance specifics of the symbolic executor and the
 * event alphabet: secondary-subobject dispatch, vptr stores at
 * non-zero offsets, and subobject-adjusted `this` passing.
 */
#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "bir/builder.h"
#include "corpus/examples.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::analysis;
using namespace rock::bir;

/**
 * Hand-built MI pattern: one object with vptrs at offsets 0 and 8,
 * then a virtual call through the secondary branch:
 *
 *   alloc 16; store [obj+0], vtA ; store [obj+8], vtB
 *   add r3, obj, 8 ; load r4,[r3+0] ; load r4,[r4+4]
 *   setarg 0, r3 ; icall r4            ; C(1@8)
 */
TEST(SymExecMi, SecondaryBranchDispatch)
{
    ImageBuilder ib;
    FuncId m = ib.declare_function("m");
    FuncId m2 = ib.declare_function("m2");
    FuncId user = ib.declare_function("user");
    VtId vt_a = ib.add_vtable("A", 1);
    VtId vt_b = ib.add_vtable("B", 2);
    ib.set_slot(vt_a, 0, m);
    ib.set_slot(vt_b, 0, m);
    ib.set_slot(vt_b, 1, m2);
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(m, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.nop();
        fb.ret();
        ib.define_function(m2, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.movi(1, 16);
        fb.setarg(0, 1);
        fb.call_addr(kAllocStub);
        fb.getret(2);
        fb.movi_vtable(9, vt_a);
        fb.store(2, 0, 9);
        fb.movi_vtable(9, vt_b);
        fb.store(2, 8, 9);
        fb.add(3, 2, 8);
        fb.load(4, 3, 0);
        fb.load(4, 4, 4);
        fb.setarg(0, 3);
        fb.icall(4);
        fb.ret();
        ib.define_function(user, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto tables = scan_vtables(img);
    ASSERT_EQ(tables.size(), 2u);

    SymbolicExecutor exec(img, tables, {});
    const FunctionEntry* fn = img.function_at(ib.func_addr(user));
    ASSERT_NE(fn, nullptr);
    FunctionAnalysis fa = exec.run(*fn, {}, false);

    // The object's primary type is the vtable stored at offset 0.
    ASSERT_EQ(fa.tracelets.count(ib.vtable_addr(vt_a)), 1u);
    const auto& tracelets = fa.tracelets.at(ib.vtable_addr(vt_a));
    ASSERT_EQ(tracelets.size(), 1u);
    // The dispatch is annotated with the secondary vptr offset.
    Tracelet expected{{EventKind::VirtCall, 1, 8}};
    EXPECT_EQ(tracelets[0], expected);

    // Evidence records both vptr stores.
    ASSERT_EQ(fa.evidence.size(), 1u);
    EXPECT_EQ(fa.evidence[0].vptr_stores.size(), 2u);
    EXPECT_EQ(fa.evidence[0].vptr_stores.at(0),
              ib.vtable_addr(vt_a));
    EXPECT_EQ(fa.evidence[0].vptr_stores.at(8),
              ib.vtable_addr(vt_b));
}

TEST(SymExecMi, ToycMiCtorEvidenceEndToEnd)
{
    corpus::CorpusProgram example =
        corpus::multiple_inheritance_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    AnalysisResult result = analyze(compiled.image);

    // Some evidence object has two distinct vptr-store offsets and
    // parent-ctor calls on both subobjects.
    bool two_offsets = false;
    bool secondary_ctor_call = false;
    for (const auto& ev : result.evidence) {
        if (ev.vptr_stores.size() >= 2)
            two_offsets = true;
        for (const auto& [off, callee] : ev.this_calls) {
            if (off != 0 && result.ctor_types.count(callee))
                secondary_ctor_call = true;
        }
    }
    EXPECT_TRUE(two_offsets);
    EXPECT_TRUE(secondary_ctor_call);
}

TEST(SymExecMi, AuxDistinguishesAlphabetSymbols)
{
    // C(1) through the primary branch and C(1) through a secondary
    // branch at offset 8 are different alphabet symbols.
    Alphabet alpha;
    int primary =
        alpha.intern(Event{EventKind::VirtCall, 1, 0});
    int secondary =
        alpha.intern(Event{EventKind::VirtCall, 1, 8});
    EXPECT_NE(primary, secondary);
}

} // namespace

/**
 * @file
 * Unit tests for the Hierarchy forest type.
 */
#include <gtest/gtest.h>

#include "rock/hierarchy.h"
#include "support/error.h"

namespace {

using rock::core::Hierarchy;
using rock::support::PanicError;

Hierarchy
sample()
{
    //      10        40
    //     |    |
    //    20   30
    //         |
    //         50       (addresses 0x10..0x50)
    Hierarchy h({0x10, 0x20, 0x30, 0x40, 0x50});
    h.set_parent(h.index_of(0x20), h.index_of(0x10));
    h.set_parent(h.index_of(0x30), h.index_of(0x10));
    h.set_parent(h.index_of(0x50), h.index_of(0x30));
    return h;
}

TEST(Hierarchy, IndexLookup)
{
    Hierarchy h = sample();
    EXPECT_EQ(h.index_of(0x10), 0);
    EXPECT_EQ(h.index_of(0x50), 4);
    EXPECT_EQ(h.index_of(0x99), -1);
    EXPECT_EQ(h.type_at(1), 0x20u);
    EXPECT_EQ(h.size(), 5);
}

TEST(Hierarchy, RootsAndChildren)
{
    Hierarchy h = sample();
    EXPECT_EQ(h.roots(), (std::vector<int>{0, 3}));
    EXPECT_EQ(h.children(0), (std::vector<int>{1, 2}));
    EXPECT_EQ(h.children(2), (std::vector<int>{4}));
    EXPECT_TRUE(h.children(4).empty());
}

TEST(Hierarchy, SuccessorsAreTransitive)
{
    Hierarchy h = sample();
    EXPECT_EQ(h.successors(0), (std::set<int>{1, 2, 4}));
    EXPECT_EQ(h.successors(2), (std::set<int>{4}));
    EXPECT_TRUE(h.successors(3).empty());
    // Never contains the node itself.
    EXPECT_EQ(h.successors(4).count(4), 0u);
}

TEST(Hierarchy, ExtraParentsFeedSuccessors)
{
    Hierarchy h = sample();
    // 0x40 becomes a second parent of 0x50 (multiple inheritance).
    h.add_extra_parent(4, 3);
    EXPECT_EQ(h.parents(4), (std::vector<int>{2, 3}));
    EXPECT_EQ(h.successors(3), (std::set<int>{4}));
    // The primary chain is unchanged.
    EXPECT_EQ(h.parent(4), 2);
}

TEST(Hierarchy, NamesAndPrinting)
{
    Hierarchy h = sample();
    h.set_name(0, "Base");
    h.set_name(2, "Middle");
    std::string out = h.to_string();
    EXPECT_NE(out.find("Base"), std::string::npos);
    EXPECT_NE(out.find("Middle"), std::string::npos);
    // Unnamed nodes fall back to their vtable address.
    EXPECT_NE(out.find("type_0x20"), std::string::npos);
    // The child-of-middle is indented under it.
    EXPECT_LT(out.find("Base"), out.find("Middle"));
    EXPECT_LT(out.find("Middle"), out.find("type_0x50"));
}

TEST(Hierarchy, GuardsInvalidArguments)
{
    Hierarchy h = sample();
    EXPECT_THROW(h.set_parent(0, 0), PanicError);
    EXPECT_THROW(h.set_parent(99, 0), PanicError);
    EXPECT_THROW(h.parent(99), PanicError);
    EXPECT_THROW(h.type_at(-1), PanicError);
    EXPECT_THROW(Hierarchy({0x20, 0x10}), PanicError); // unsorted
}

TEST(Hierarchy, CyclicParentsDoNotHangSuccessors)
{
    // successors() must terminate even on malformed cyclic input.
    Hierarchy h({0x1, 0x2});
    h.set_parent(0, 1);
    h.set_parent(1, 0);
    EXPECT_EQ(h.successors(0), (std::set<int>{1}));
}

} // namespace

/**
 * @file
 * End-to-end property tests over randomly generated programs:
 * compile -> strip -> analyze -> reconstruct -> score.
 */
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "eval/application_distance.h"
#include "eval/forest_metrics.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, CleanProgramsReconstructAccurately)
{
    // Clean setting: ctor cues intact, no fold noise. The structural
    // rules alone should pin nearly everything; the full pipeline must
    // score (near-)zero.
    corpus::GeneratorSpec spec;
    spec.seed = GetParam();
    spec.num_classes = 10 + static_cast<int>(GetParam() % 8);
    spec.num_trees = 2;
    toyc::Program prog = corpus::generate_program(spec);
    toyc::CompileResult compiled = toyc::compile(prog);
    core::ReconstructionResult result =
        core::reconstruct(compiled.image);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    eval::AppDistance d =
        eval::application_distance(result.hierarchy, gt);
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0) << prog.name;
    EXPECT_DOUBLE_EQ(d.avg_added, 0.0) << prog.name;

    eval::ForestMetrics m = forest_metrics(result.hierarchy, gt);
    EXPECT_DOUBLE_EQ(m.parent_accuracy, 1.0) << prog.name;
}

TEST_P(RoundTrip, SlmNeverWorseThanStructuralOnAdded)
{
    // Noisy setting: no ctor cues, some fold noise. The with-SLM
    // added count must not exceed the structural-only one.
    corpus::GeneratorSpec spec;
    spec.seed = GetParam() + 1000;
    spec.num_classes = 9 + static_cast<int>(GetParam() % 6);
    spec.num_trees = 2;
    spec.fold_noise_pairs = 1;
    toyc::Program prog = corpus::generate_program(spec);
    toyc::CompileOptions opts;
    opts.parent_ctor_calls = false;
    toyc::CompileResult compiled = toyc::compile(prog, opts);
    core::ReconstructionResult result =
        core::reconstruct(compiled.image);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    eval::AppDistance without = eval::application_distance_structural(
        result.structural, gt);
    eval::AppDistance with =
        eval::application_distance_worst(result, gt);
    EXPECT_LE(with.avg_added, without.avg_added + 1e-9) << prog.name;
}

TEST_P(RoundTrip, StrippingDoesNotChangeTheResult)
{
    // The analysis must not depend on symbols: reconstruction of the
    // stripped and non-stripped images must coincide.
    corpus::GeneratorSpec spec;
    spec.seed = GetParam() + 2000;
    spec.num_classes = 8;
    toyc::Program prog = corpus::generate_program(spec);

    toyc::CompileOptions stripped;
    toyc::CompileOptions symbols;
    symbols.link.strip_symbols = false;
    symbols.link.emit_rtti = true;

    toyc::CompileResult img_a = toyc::compile(prog, stripped);
    toyc::CompileResult img_b = toyc::compile(prog, symbols);

    core::ReconstructionResult res_a =
        core::reconstruct(img_a.image);
    core::ReconstructionResult res_b =
        core::reconstruct(img_b.image);

    ASSERT_EQ(res_a.hierarchy.size(), res_b.hierarchy.size());
    // Parent relations agree modulo the (identical) vtable addresses:
    // RTTI records shift data layout, so compare by debug names.
    auto name_parents = [](const core::ReconstructionResult& res,
                           const toyc::DebugInfo& debug) {
        std::map<std::string, std::string> out;
        std::map<std::uint32_t, std::string> names;
        for (const auto& type : debug.types)
            names[type.vtable_addr] = type.class_name;
        for (int v = 0; v < res.hierarchy.size(); ++v) {
            int p = res.hierarchy.parent(v);
            out[names.at(res.hierarchy.type_at(v))] =
                p < 0 ? "<root>"
                      : names.at(res.hierarchy.type_at(p));
        }
        return out;
    };
    EXPECT_EQ(name_parents(res_a, img_a.debug),
              name_parents(res_b, img_b.debug));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace

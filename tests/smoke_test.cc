/**
 * @file
 * End-to-end smoke test: the paper's streams example (Figs. 3-8)
 * must reconstruct the Fig. 4 hierarchy.
 */
#include <gtest/gtest.h>

#include "corpus/examples.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

TEST(Smoke, StreamsReconstructsFig4)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);

    ASSERT_FALSE(compiled.image.functions.empty());
    EXPECT_TRUE(compiled.image.symbols.empty()) << "image not stripped";

    core::ReconstructionResult result =
        core::reconstruct(compiled.image);

    // Three binary types discovered.
    ASSERT_EQ(result.structural.types.size(), 3u);

    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    ASSERT_EQ(gt.types.size(), 3u);

    // The reconstruction should be exact: Stream is the root,
    // ConfirmableStream and FlushableStream its children.
    eval::AppDistance dist =
        eval::application_distance(result.hierarchy, gt);
    EXPECT_DOUBLE_EQ(dist.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(dist.avg_added, 0.0);

    std::uint32_t stream_vt = compiled.debug.class_to_vtable.at("Stream");
    std::uint32_t flush_vt =
        compiled.debug.class_to_vtable.at("FlushableStream");
    std::uint32_t confirm_vt =
        compiled.debug.class_to_vtable.at("ConfirmableStream");

    int stream = result.hierarchy.index_of(stream_vt);
    int flush = result.hierarchy.index_of(flush_vt);
    int confirm = result.hierarchy.index_of(confirm_vt);
    ASSERT_GE(stream, 0);
    ASSERT_GE(flush, 0);
    ASSERT_GE(confirm, 0);
    EXPECT_EQ(result.hierarchy.parent(stream), -1);
    EXPECT_EQ(result.hierarchy.parent(confirm), stream);
    EXPECT_EQ(result.hierarchy.parent(flush), stream);
}

} // namespace

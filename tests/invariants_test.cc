/**
 * @file
 * Cross-cutting pipeline invariants, swept over every bundled
 * benchmark program:
 *
 *  - the reconstructed forest is acyclic;
 *  - every chosen parent is structurally feasible;
 *  - rule-3 forced parents are always honored;
 *  - parent edges never cross family boundaries;
 *  - every discovered binary type appears in the hierarchy;
 *  - Heuristic 4.1: a type with feasible parents is never a root
 *    unless every feasible choice would close a cycle.
 */
#include <gtest/gtest.h>

#include <set>

#include "corpus/benchmarks.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

class Invariants : public ::testing::TestWithParam<std::string> {};

TEST_P(Invariants, HoldOnBenchmark)
{
    corpus::BenchmarkSpec spec =
        corpus::benchmark_by_name(GetParam());
    toyc::CompileResult compiled =
        toyc::compile(spec.program.program, spec.program.options);
    core::ReconstructionResult result =
        core::reconstruct(compiled.image);
    const auto& sr = result.structural;
    const core::Hierarchy& h = result.hierarchy;

    // Coverage: hierarchy nodes == discovered binary types.
    ASSERT_EQ(static_cast<std::size_t>(h.size()), sr.types.size());

    for (int v = 0; v < h.size(); ++v) {
        // Acyclicity: walking up parents terminates.
        std::set<int> seen;
        int cur = v;
        while (cur >= 0) {
            ASSERT_TRUE(seen.insert(cur).second)
                << "cycle through node " << cur;
            cur = h.parent(cur);
        }

        int p = h.parent(v);
        if (p >= 0) {
            // Feasibility and family discipline.
            EXPECT_TRUE(
                sr.possible_parents[static_cast<std::size_t>(v)]
                    .count(p))
                << "infeasible parent for node " << v;
            EXPECT_EQ(sr.family[static_cast<std::size_t>(v)],
                      sr.family[static_cast<std::size_t>(p)])
                << "cross-family edge";
        }

        // Forced parents are honored.
        auto forced = sr.forced_parents.find(v);
        if (forced != sr.forced_parents.end()) {
            EXPECT_EQ(p, forced->second)
                << "rule-3 evidence ignored for node " << v;
        }

        // Heuristic 4.1: roots have no feasible parents, or using one
        // would require re-rooting elsewhere (i.e. the type's feasible
        // parents are all its own successors).
        if (p < 0 &&
            !sr.possible_parents[static_cast<std::size_t>(v)]
                 .empty()) {
            auto succ = h.successors(v);
            for (int cand :
                 sr.possible_parents[static_cast<std::size_t>(v)]) {
                EXPECT_TRUE(succ.count(cand))
                    << "node " << v
                    << " left a usable parent unused";
            }
        }
    }

    // Every surviving alternative satisfies the same feasibility
    // rules.
    for (const auto& fam : result.families) {
        for (const auto& alt : fam.alternatives) {
            for (std::size_t m = 0; m < fam.members.size(); ++m) {
                int child = fam.members[m];
                int parent = alt[m];
                if (parent < 0)
                    continue;
                EXPECT_TRUE(sr.possible_parents[static_cast<
                                std::size_t>(child)]
                                .count(parent));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Invariants,
    ::testing::Values("AntispyComplete", "bafprp", "cppcheck",
                      "MidiLib", "patl", "pop3", "smtp", "tinyxml",
                      "tinyxmlSTL", "yafe", "Analyzer",
                      "CGridListCtrlEx", "echoparams", "gperf",
                      "libctemplate", "ShowTraf", "Smoothing",
                      "td_unittest", "tinyserver"));

} // namespace

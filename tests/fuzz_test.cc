/**
 * @file
 * Meta-tests of the property-fuzzing harness (src/fuzz): the
 * registry is well-formed, a clean pipeline passes every oracle, an
 * injected pipeline bug is caught and shrinks to a tiny reproducer,
 * and repro files round-trip and replay.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "fuzz/case.h"
#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/repro.h"
#include "fuzz/shrink.h"
#include "support/error.h"

namespace {

using namespace rock;
using corpus::GeneratorSpec;

TEST(FuzzRegistry, WellFormed)
{
    const auto& registry = fuzz::oracle_registry();
    ASSERT_GE(registry.size(), 8u);
    std::set<std::string> names;
    for (const auto& oracle : registry) {
        EXPECT_FALSE(oracle.name.empty());
        EXPECT_FALSE(oracle.description.empty());
        EXPECT_TRUE(oracle.check != nullptr);
        EXPECT_TRUE(names.insert(oracle.name).second)
            << "duplicate oracle " << oracle.name;
        EXPECT_EQ(fuzz::find_oracle(oracle.name), &oracle);
    }
    EXPECT_EQ(fuzz::find_oracle("no-such-oracle"), nullptr);
    // The implicit crash oracle must not shadow a registered one.
    EXPECT_EQ(fuzz::find_oracle(fuzz::kNoCrashOracle), nullptr);
}

TEST(FuzzSampling, DeterministicAndValid)
{
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        GeneratorSpec a = fuzz::sample_spec(seed);
        GeneratorSpec b = fuzz::sample_spec(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_GE(a.num_trees, 1);
        EXPECT_GE(a.num_classes, a.num_trees);
        EXPECT_GE(a.max_depth, 1);
        EXPECT_GE(a.max_children, 1);
        EXPECT_GE(a.root_methods, 1);
        EXPECT_GE(a.scenarios_per_class, 1);
        EXPECT_GE(a.fold_noise_pairs, 0);
        EXPECT_GE(a.mi_prob, 0.0);
        EXPECT_EQ(a.seed, seed);
    }
    // Distinct seeds explore distinct shapes.
    EXPECT_NE(fuzz::sample_spec(1), fuzz::sample_spec(2));
}

TEST(FuzzCampaign, CleanPipelinePassesEveryOracle)
{
    fuzz::FuzzOptions options;
    options.seeds = 4;
    options.first_seed = 101;
    fuzz::FuzzReport report = fuzz::run_fuzz(options);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty()
                ? std::string()
                : report.failures[0].oracle + ": " +
                      report.failures[0].detail);
    EXPECT_EQ(report.cases_run, 4);
    // Every registered oracle ran on every case.
    for (const auto& oracle : fuzz::oracle_registry())
        EXPECT_EQ(report.oracle_passes.at(oracle.name), 4)
            << oracle.name;
}

TEST(FuzzCampaign, BudgetStopsEarlyButRunsAtLeastOneCase)
{
    fuzz::FuzzOptions options;
    options.seeds = 50;
    options.budget_ms = 0.001;
    fuzz::FuzzReport report = fuzz::run_fuzz(options);
    EXPECT_EQ(report.cases_run, 1);
    EXPECT_TRUE(report.budget_exhausted);
}

TEST(FuzzMeta, InjectedBugIsCaughtAndShrinksSmall)
{
    // Deliberately break the pipeline output: drop every rule-3
    // forced edge, the bug class of paper Section 5.2.
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-forced-edges");

    fuzz::FuzzOptions options;
    options.seeds = 6;
    options.first_seed = 1;
    options.only = {"forced-parents"};
    options.max_failures = 1;
    fuzz::FuzzReport report = fuzz::run_fuzz(options, config);

    ASSERT_FALSE(report.failures.empty())
        << "the forced-parents oracle missed an injected bug";
    const fuzz::FuzzFailure& failure = report.failures[0];
    EXPECT_EQ(failure.oracle, "forced-parents");
    EXPECT_FALSE(failure.detail.empty());
    // Shrinking must reach a near-minimal hierarchy.
    EXPECT_LE(failure.shrunk.num_classes, 6);
    EXPECT_GE(failure.shrink_steps, 1);
    // The shrunk spec still reproduces the failure.
    EXPECT_TRUE(fuzz::spec_fails_oracle(failure.shrunk,
                                        "forced-parents", config));
    // ... and the unshrunk one does too.
    EXPECT_TRUE(fuzz::spec_fails_oracle(failure.spec,
                                        "forced-parents", config));
}

TEST(FuzzMeta, OrphanInjectionTripsStructureOracle)
{
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("orphan-last-type");
    fuzz::FuzzOptions options;
    options.seeds = 6;
    options.only = {"structure"};
    options.max_failures = 1;
    options.shrink = false;
    fuzz::FuzzReport report = fuzz::run_fuzz(options, config);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures[0].oracle, "structure");
}

TEST(FuzzMeta, DroppedTraceletsAreCaughtByVmDifferential)
{
    // Deliberately lose every static tracelet containing a virtual
    // dispatch -- a symexec lost-path bug class. The interpreter
    // still witnesses those tracelets concretely, so containment
    // (dynamic ⊆ static) breaks, even after the oracle's boosted
    // re-analysis (the hook re-applies to the boosted result too).
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-virtcall-tracelets");

    fuzz::FuzzOptions options;
    options.seeds = 6;
    options.first_seed = 1;
    options.only = {"vm-differential"};
    options.max_failures = 1;
    fuzz::FuzzReport report = fuzz::run_fuzz(options, config);

    ASSERT_FALSE(report.failures.empty())
        << "the vm-differential oracle missed an injected symexec bug";
    const fuzz::FuzzFailure& failure = report.failures[0];
    EXPECT_EQ(failure.oracle, "vm-differential");
    EXPECT_FALSE(failure.detail.empty());
    // Shrinks to a near-minimal program.
    EXPECT_LE(failure.shrunk.num_classes, 3);
    EXPECT_GE(failure.shrink_steps, 1);
    EXPECT_TRUE(fuzz::spec_fails_oracle(failure.shrunk,
                                        "vm-differential", config));
}

TEST(FuzzMeta, DroppedVptrConstraintsAreCaughtByTypeinfOracle)
{
    // Deliberately erase every VptrStore constraint and the solved
    // subtype facts -- a constraint-generation bug class (missed
    // stores). The typeinf-consistent oracle re-infers directly from
    // the image, so the gutted result cannot hide.
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-vptr-constraints");

    fuzz::FuzzOptions options;
    options.seeds = 6;
    options.first_seed = 1;
    options.only = {"typeinf-consistent"};
    options.max_failures = 1;
    fuzz::FuzzReport report = fuzz::run_fuzz(options, config);

    ASSERT_FALSE(report.failures.empty())
        << "the typeinf-consistent oracle missed an injected "
           "constraint-generation bug";
    const fuzz::FuzzFailure& failure = report.failures[0];
    EXPECT_EQ(failure.oracle, "typeinf-consistent");
    EXPECT_FALSE(failure.detail.empty());
    // Shrinks to a near-minimal program.
    EXPECT_LE(failure.shrunk.num_classes, 3);
    EXPECT_GE(failure.shrink_steps, 1);
    EXPECT_TRUE(fuzz::spec_fails_oracle(failure.shrunk,
                                        "typeinf-consistent", config));
}

TEST(FuzzMeta, CollapsedBatchDedupIsCaughtByServeDifferential)
{
    // Deliberately collapse the daemon's wave-dedup key -- the
    // request-aliasing bug class where two different images batched
    // into one analysis wave are served one answer. The
    // serve-differential oracle compares each daemon response
    // against a direct reconstruct() of the submitted bytes, so the
    // aliased response cannot hide.
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-batch-dedup");

    fuzz::FuzzOptions options;
    options.seeds = 6;
    options.first_seed = 1;
    options.only = {"serve-differential"};
    options.max_failures = 1;
    options.shrink = false; // each case boots a real daemon
    fuzz::FuzzReport report = fuzz::run_fuzz(options, config);

    ASSERT_FALSE(report.failures.empty())
        << "the serve-differential oracle missed an injected "
           "dedup-aliasing bug";
    const fuzz::FuzzFailure& failure = report.failures[0];
    EXPECT_EQ(failure.oracle, "serve-differential");
    EXPECT_FALSE(failure.detail.empty());
    EXPECT_TRUE(fuzz::spec_fails_oracle(failure.spec,
                                        "serve-differential", config));
}

TEST(FuzzMeta, ServeDifferentialHoldsWithoutInjection)
{
    fuzz::FuzzOptions options;
    options.seeds = 2;
    options.first_seed = 1;
    options.only = {"serve-differential"};
    fuzz::FuzzReport report = fuzz::run_fuzz(options);
    ASSERT_TRUE(report.failures.empty())
        << report.failures[0].oracle << ": "
        << report.failures[0].detail;
}

TEST(FuzzCampaign, CoverageGuidedSelectionCoversMoreBlocks)
{
    // At equal case count, picking each case out of a rockvm-executed
    // candidate pool by new-block coverage must beat blind sampling
    // on distinct blocks covered. Deterministic, so a fixed seed
    // range is a stable regression gate.
    fuzz::FuzzOptions blind;
    blind.seeds = 8;
    blind.first_seed = 101;
    blind.only = {"structure"};
    blind.coverage_pool = 2; // pool of blind winner + 1 alternative
    fuzz::FuzzReport pool2 = fuzz::run_fuzz(blind);

    fuzz::FuzzOptions guided = blind;
    guided.coverage_pool = 5;
    fuzz::FuzzReport pool5 = fuzz::run_fuzz(guided);

    EXPECT_GT(pool2.covered_blocks, 0u);
    EXPECT_GT(pool5.covered_blocks, pool2.covered_blocks);

    // Blind campaigns leave the interpreter out of the loop.
    fuzz::FuzzOptions off = blind;
    off.coverage_pool = 1;
    EXPECT_EQ(fuzz::run_fuzz(off).covered_blocks, 0u);
}

TEST(FuzzMeta, UnknownInjectionIsFatal)
{
    EXPECT_THROW(fuzz::injection_by_name("no-such-bug"),
                 support::FatalError);
}

TEST(FuzzRepro, SpecJsonRoundTripsEveryField)
{
    GeneratorSpec spec = fuzz::sample_spec(17);
    spec.class_prefix = "Q";
    spec.name_base = 4096;
    spec.new_method_prob = 0.12345678901234567;
    GeneratorSpec parsed =
        fuzz::spec_from_json(fuzz::spec_to_json(spec));
    EXPECT_EQ(parsed, spec);
}

TEST(FuzzRepro, FileRoundTripAndReplay)
{
    fuzz::Repro repro;
    repro.case_seed = 23;
    repro.oracle = "forced-parents";
    repro.spec = fuzz::sample_spec(23);

    std::string path = ::testing::TempDir() + "rockfuzz_test.json";
    fuzz::write_repro_file(repro, path);
    fuzz::Repro loaded = fuzz::read_repro_file(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.case_seed, repro.case_seed);
    EXPECT_EQ(loaded.oracle, repro.oracle);
    EXPECT_EQ(loaded.spec, repro.spec);

    // A clean pipeline replays green...
    fuzz::FuzzReport clean = fuzz::replay(loaded);
    EXPECT_TRUE(clean.ok());
    // ... and the injected bug reproduces on replay.
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-forced-edges");
    fuzz::FuzzReport broken =
        fuzz::replay(loaded, config, {"forced-parents"});
    EXPECT_FALSE(broken.ok());
}

TEST(FuzzRepro, MalformedJsonIsFatal)
{
    EXPECT_THROW(fuzz::repro_from_json("{}"), support::FatalError);
    EXPECT_THROW(fuzz::repro_from_json("not json at all"),
                 support::FatalError);
    EXPECT_THROW(
        fuzz::repro_from_json(
            "{\"rockfuzz_repro\": 1, \"case_seed\": 5, "
            "\"spec\": {\"num_classes\": 3"),
        support::FatalError);
    EXPECT_THROW(fuzz::read_repro_file("/nonexistent/nope.json"),
                 support::FatalError);
}

TEST(FuzzShrink, PreservesGeneratorPreconditions)
{
    // Shrinking an always-failing predicate walks the full ladder;
    // every intermediate spec must stay generator-valid (this would
    // throw inside generate_program otherwise).
    fuzz::CaseConfig config;
    config.hooks = fuzz::injection_by_name("drop-forced-edges");
    GeneratorSpec spec = fuzz::sample_spec(3);
    fuzz::ShrinkOutcome outcome =
        fuzz::shrink_spec(spec, "forced-parents", config);
    EXPECT_GE(outcome.spec.num_trees, 1);
    EXPECT_GE(outcome.spec.num_classes, outcome.spec.num_trees);
    EXPECT_LE(outcome.runs, 150);
    EXPECT_LE(outcome.spec.num_classes, spec.num_classes);
}

} // namespace

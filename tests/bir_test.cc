/**
 * @file
 * Unit tests for the VM32 ISA, BinaryImage, and ImageBuilder.
 */
#include <gtest/gtest.h>

#include "bir/builder.h"
#include "bir/image.h"
#include "bir/isa.h"
#include "support/error.h"

namespace {

using namespace rock::bir;
using rock::support::FatalError;
using rock::support::PanicError;

// ---------------------------------------------------------------------
// ISA encode/decode
// ---------------------------------------------------------------------

class IsaRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity)
{
    Instr instr;
    instr.op = GetParam();
    instr.a = 3;
    instr.b = 7;
    instr.c = 1;
    instr.imm = 0xdeadbeef;
    std::vector<std::uint8_t> bytes;
    encode(instr, bytes);
    ASSERT_EQ(bytes.size(), kInstrSize);
    auto decoded = decode(bytes, 0);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, instr);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, IsaRoundTrip,
    ::testing::Values(Op::Nop, Op::MovImm, Op::MovReg, Op::Load,
                      Op::Store, Op::AddImm, Op::Call, Op::CallInd,
                      Op::SetArg, Op::GetArg, Op::GetRet, Op::RetVal,
                      Op::Ret, Op::Jmp, Op::Jnz, Op::Jz));

TEST(Isa, DecodeRejectsTruncation)
{
    std::vector<std::uint8_t> bytes(kInstrSize - 1, 0);
    EXPECT_FALSE(decode(bytes, 0).has_value());
}

TEST(Isa, DecodeRejectsBadOpcode)
{
    std::vector<std::uint8_t> bytes(kInstrSize, 0);
    bytes[0] = 0xff;
    EXPECT_FALSE(decode(bytes, 0).has_value());
}

TEST(Isa, DecodeRejectsRegisterFieldOutOfRange)
{
    // Every register operand an op actually reads or writes must name
    // a register < kNumRegs.
    Instr instr;
    instr.op = Op::MovImm;
    instr.a = kNumRegs; // first invalid destination
    std::vector<std::uint8_t> bytes;
    encode(instr, bytes);
    EXPECT_FALSE(decode(bytes, 0).has_value());

    instr = {};
    instr.op = Op::Store;
    instr.a = 1;
    instr.b = 0xff; // source register out of range
    bytes.clear();
    encode(instr, bytes);
    EXPECT_FALSE(decode(bytes, 0).has_value());

    instr = {};
    instr.op = Op::Jnz;
    instr.a = 200; // condition register out of range
    bytes.clear();
    encode(instr, bytes);
    EXPECT_FALSE(decode(bytes, 0).has_value());
}

TEST(Isa, DecodeToleratesStaleIgnoredFields)
{
    // Fields an op ignores (c everywhere, b of a Jnz, everything of a
    // Nop) carry whatever bytes the encoder left; decode must accept
    // them -- encode() writes Instr fields verbatim and real images
    // may hold stale values there.
    Instr instr;
    instr.op = Op::Nop;
    instr.a = 0xff;
    instr.b = 0xff;
    instr.c = 0xff;
    std::vector<std::uint8_t> bytes;
    encode(instr, bytes);
    EXPECT_TRUE(decode(bytes, 0).has_value());

    instr = {};
    instr.op = Op::Jnz;
    instr.a = 3;
    instr.b = 0xee; // ignored by Jnz
    instr.c = 0xdd;
    bytes.clear();
    encode(instr, bytes);
    EXPECT_TRUE(decode(bytes, 0).has_value());

    // SetArg's `a` and GetArg's `b` are argument slots, not
    // registers: large values are not the decoder's business.
    instr = {};
    instr.op = Op::SetArg;
    instr.a = 0x80; // slot index
    instr.b = 2;    // register, valid
    bytes.clear();
    encode(instr, bytes);
    EXPECT_TRUE(decode(bytes, 0).has_value());
}

TEST(Isa, RegisterOperandClassification)
{
    Instr instr;
    instr.op = Op::Store;
    instr.a = 4;
    instr.b = 9;
    EXPECT_EQ(reg_uses(instr), (std::vector<int>{4, 9}));
    EXPECT_EQ(reg_def(instr), -1);

    instr.op = Op::GetRet;
    instr.a = 6;
    EXPECT_TRUE(reg_uses(instr).empty());
    EXPECT_EQ(reg_def(instr), 6);

    instr.op = Op::SetArg; // a is a slot, b the source register
    instr.a = 3;
    instr.b = 7;
    EXPECT_EQ(reg_uses(instr), (std::vector<int>{7}));
    EXPECT_EQ(reg_def(instr), -1);

    EXPECT_TRUE(is_jump(Op::Jz));
    EXPECT_FALSE(is_jump(Op::Call));
    EXPECT_TRUE(is_block_end(Op::Jmp));
    EXPECT_FALSE(is_block_end(Op::Jnz));
}

TEST(Isa, ImmediateIsLittleEndian)
{
    Instr instr;
    instr.op = Op::MovImm;
    instr.imm = 0x04030201;
    std::vector<std::uint8_t> bytes;
    encode(instr, bytes);
    EXPECT_EQ(bytes[4], 0x01);
    EXPECT_EQ(bytes[5], 0x02);
    EXPECT_EQ(bytes[6], 0x03);
    EXPECT_EQ(bytes[7], 0x04);
}

TEST(Isa, Disassembly)
{
    Instr instr;
    instr.op = Op::Load;
    instr.a = 1;
    instr.b = 2;
    instr.imm = 8;
    EXPECT_EQ(to_string(instr), "load r1, [r2+8]");
    instr.op = Op::Call;
    instr.imm = 0x1000;
    EXPECT_EQ(to_string(instr), "call 0x1000");
}

// ---------------------------------------------------------------------
// ImageBuilder and BinaryImage
// ---------------------------------------------------------------------

/** One trivial function: ret. */
FunctionBuilder
trivial_body()
{
    FunctionBuilder fb;
    fb.ret();
    return fb;
}

TEST(Builder, LaysOutFunctionsSequentially)
{
    ImageBuilder ib;
    FuncId f0 = ib.declare_function("f0");
    FuncId f1 = ib.declare_function("f1");
    {
        FunctionBuilder fb;
        fb.nop();
        fb.nop();
        fb.ret();
        ib.define_function(f0, std::move(fb));
    }
    ib.define_function(f1, trivial_body());
    BinaryImage img = ib.link({});
    EXPECT_EQ(ib.func_addr(f0), kCodeBase);
    EXPECT_EQ(ib.func_addr(f1), kCodeBase + 3 * kInstrSize);
    ASSERT_EQ(img.functions.size(), 2u);
    EXPECT_EQ(img.functions[0].size, 3 * kInstrSize);
}

TEST(Builder, ResolvesForwardCalls)
{
    ImageBuilder ib;
    FuncId caller = ib.declare_function("caller");
    FuncId callee = ib.declare_function("callee");
    {
        FunctionBuilder fb;
        fb.call(callee); // forward reference
        fb.ret();
        ib.define_function(caller, std::move(fb));
    }
    ib.define_function(callee, trivial_body());
    BinaryImage img = ib.link({});
    auto body = img.decode_function(img.functions[0]);
    ASSERT_EQ(body.size(), 2u);
    EXPECT_EQ(body[0].op, Op::Call);
    EXPECT_EQ(body[0].imm, ib.func_addr(callee));
}

TEST(Builder, ResolvesLocalLabels)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    {
        FunctionBuilder fb;
        int skip = fb.new_label();
        fb.jz(0, skip);
        fb.nop();
        fb.bind(skip);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto body = img.decode_function(img.functions[0]);
    EXPECT_EQ(body[0].op, Op::Jz);
    EXPECT_EQ(body[0].imm, kCodeBase + 2 * kInstrSize);
}

TEST(Builder, UnboundLabelPanics)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FunctionBuilder fb;
    int label = fb.new_label();
    fb.jmp(label);
    EXPECT_THROW(ib.define_function(f, std::move(fb)), PanicError);
}

TEST(Builder, UndefinedFunctionIsFatalAtLink)
{
    ImageBuilder ib;
    ib.declare_function("ghost");
    EXPECT_THROW(ib.link({}), FatalError);
}

TEST(Builder, UnsetVtableSlotIsFatalAtLink)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    ib.define_function(f, trivial_body());
    ib.add_vtable("T", 2);
    EXPECT_THROW(ib.link({}), FatalError);
}

TEST(Builder, VtableSlotsPointAtFunctions)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId g = ib.declare_function("g");
    ib.define_function(f, trivial_body());
    {
        FunctionBuilder fb;
        fb.nop();
        fb.ret();
        ib.define_function(g, std::move(fb));
    }
    VtId vt = ib.add_vtable("T", 3);
    ib.set_slot(vt, 0, f);
    ib.set_slot(vt, 1, g);
    ib.set_slot_pure(vt, 2);
    BinaryImage img = ib.link({});

    std::uint32_t addr = ib.vtable_addr(vt);
    EXPECT_EQ(*img.read_data_word(addr), ib.func_addr(f));
    EXPECT_EQ(*img.read_data_word(addr + 4), ib.func_addr(g));
    EXPECT_EQ(*img.read_data_word(addr + 8), kPurecallStub);
    // RTTI back-pointer slot is zero when stripped.
    EXPECT_EQ(*img.read_data_word(addr - 4), 0u);
    EXPECT_FALSE(img.has_rtti);
}

TEST(Builder, MoviVtableRelocation)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, f);
    {
        FunctionBuilder fb;
        fb.movi_vtable(5, vt);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    auto body = img.decode_function(img.functions[0]);
    EXPECT_EQ(body[0].imm, ib.vtable_addr(vt));
    EXPECT_TRUE(img.in_data(body[0].imm));
}

TEST(Builder, RttiRecordsRoundTrip)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    ib.define_function(f, trivial_body());
    VtId parent = ib.add_vtable("Parent", 1);
    VtId child = ib.add_vtable("Child", 1);
    ib.set_slot(parent, 0, f);
    ib.set_slot(child, 0, f);
    ib.set_rtti_chain(parent, {parent});
    ib.set_rtti_chain(child, {child, parent});
    LinkOptions opts;
    opts.emit_rtti = true;
    opts.strip_symbols = false;
    BinaryImage img = ib.link(opts);

    EXPECT_TRUE(img.has_rtti);
    // The child's back-pointer leads to a magic-tagged record naming
    // its ancestor chain.
    std::uint32_t rec = *img.read_data_word(ib.vtable_addr(child) - 4);
    EXPECT_EQ(*img.read_data_word(rec), kRttiMagic);
    EXPECT_EQ(*img.read_data_word(rec + 4), ib.vtable_addr(child));
    EXPECT_FALSE(img.symbols.empty());
}

TEST(Builder, StripRemovesSymbols)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("secret_name");
    ib.define_function(f, trivial_body());
    BinaryImage img = ib.link({/*strip_symbols=*/true, false});
    EXPECT_TRUE(img.symbols.empty());
    EXPECT_EQ(img.name_of(kCodeBase), "sub_1000");
}

TEST(Builder, FoldsIdenticalFunctions)
{
    ImageBuilder ib;
    FuncId a = ib.declare_function("a");
    FuncId b = ib.declare_function("b");
    FuncId c = ib.declare_function("c");
    auto body = [] {
        FunctionBuilder fb;
        fb.movi(0, 7);
        fb.ret();
        return fb;
    };
    ib.define_function(a, body());
    ib.define_function(b, body());
    {
        FunctionBuilder fb;
        fb.movi(0, 8); // different
        fb.ret();
        ib.define_function(c, std::move(fb));
    }
    EXPECT_EQ(ib.fold_identical_functions(), 1u);
    BinaryImage img = ib.link({});
    EXPECT_EQ(img.functions.size(), 2u);
    EXPECT_EQ(ib.func_addr(a), ib.func_addr(b));
    EXPECT_NE(ib.func_addr(a), ib.func_addr(c));
}

TEST(Builder, FoldingReachesFixpointThroughCallers)
{
    // callees x == y; callers cx calls x, cy calls y: after folding
    // the callees, the callers become identical and fold too.
    ImageBuilder ib;
    FuncId x = ib.declare_function("x");
    FuncId y = ib.declare_function("y");
    FuncId cx = ib.declare_function("cx");
    FuncId cy = ib.declare_function("cy");
    ib.define_function(x, trivial_body());
    ib.define_function(y, trivial_body());
    {
        FunctionBuilder fb;
        fb.call(x);
        fb.ret();
        ib.define_function(cx, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.call(y);
        fb.ret();
        ib.define_function(cy, std::move(fb));
    }
    EXPECT_EQ(ib.fold_identical_functions(), 2u);
    ib.link({});
    EXPECT_EQ(ib.func_addr(cx), ib.func_addr(cy));
}

TEST(Builder, FoldingRedirectsVtableSlots)
{
    ImageBuilder ib;
    FuncId a = ib.declare_function("a");
    FuncId b = ib.declare_function("b");
    ib.define_function(a, trivial_body());
    ib.define_function(b, trivial_body());
    VtId va = ib.add_vtable("A", 1);
    VtId vb = ib.add_vtable("B", 1);
    ib.set_slot(va, 0, a);
    ib.set_slot(vb, 0, b);
    ib.fold_identical_functions();
    BinaryImage img = ib.link({});
    EXPECT_EQ(*img.read_data_word(ib.vtable_addr(va)),
              *img.read_data_word(ib.vtable_addr(vb)));
}

TEST(Image, SectionPredicates)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    ib.define_function(f, trivial_body());
    VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, f);
    BinaryImage img = ib.link({});

    EXPECT_TRUE(img.in_code(kCodeBase));
    EXPECT_FALSE(img.in_code(kCodeBase + img.code.size()));
    EXPECT_TRUE(img.in_data(kDataBase));
    EXPECT_FALSE(img.in_data(kDataBase - 1));
    EXPECT_TRUE(img.is_function_start(kCodeBase));
    EXPECT_TRUE(img.is_function_start(kAllocStub));
    EXPECT_TRUE(img.is_function_start(kPurecallStub));
    EXPECT_FALSE(img.is_function_start(kCodeBase + 4));
}

TEST(Image, ReadDataWordBounds)
{
    BinaryImage img;
    img.data = {1, 0, 0, 0, 2};
    EXPECT_EQ(*img.read_data_word(img.data_base), 1u);
    EXPECT_FALSE(img.read_data_word(img.data_base + 4).has_value());
    EXPECT_FALSE(img.read_data_word(0).has_value());
}

TEST(Image, DisassembleMentionsFunctions)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("hello");
    ib.define_function(f, trivial_body());
    LinkOptions opts;
    opts.strip_symbols = false;
    BinaryImage img = ib.link(opts);
    std::string listing = img.disassemble();
    EXPECT_NE(listing.find("hello"), std::string::npos);
    EXPECT_NE(listing.find("ret"), std::string::npos);
}

} // namespace

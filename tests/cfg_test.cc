/**
 * @file
 * Tests for the static-analysis layer: CFG recovery, dominators, the
 * dataflow analyses, and the rockcheck verifier.
 *
 * Hand-crafted VM32 bodies pin the recovered structure (blocks,
 * edges, dominator tree, exact dataflow facts); crafted and
 * bit-flipped images pin every verifier diagnostic kind, and compiled
 * corpus programs pin the "toolchain output is clean" direction.
 */
#include <gtest/gtest.h>

#include <set>

#include "bir/builder.h"
#include "cfg/analyses.h"
#include "cfg/cfg.h"
#include "cfg/dominators.h"
#include "cfg/verify.h"
#include "corpus/examples.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::cfg;
using bir::BinaryImage;
using bir::FuncId;
using bir::FunctionBuilder;
using bir::ImageBuilder;
using bir::kCodeBase;
using bir::kInstrSize;

/** Link a single function into an image. */
BinaryImage
single_function(FunctionBuilder fb)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    ib.define_function(f, std::move(fb));
    return ib.link({});
}

/** Overwrite the immediate of the instruction at @p addr. */
void
patch_imm(BinaryImage& image, std::uint32_t addr, std::uint32_t imm)
{
    std::size_t off = addr - image.code_base;
    image.code[off + 4] = static_cast<std::uint8_t>(imm & 0xff);
    image.code[off + 5] = static_cast<std::uint8_t>((imm >> 8) & 0xff);
    image.code[off + 6] = static_cast<std::uint8_t>((imm >> 16) & 0xff);
    image.code[off + 7] = static_cast<std::uint8_t>((imm >> 24) & 0xff);
}

std::set<DiagKind>
kinds(const std::vector<Diagnostic>& diags)
{
    std::set<DiagKind> out;
    for (const auto& d : diags)
        out.insert(d.kind);
    return out;
}

// ---------------------------------------------------------------------
// CFG recovery
// ---------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    FunctionBuilder fb;
    fb.movi(2, 1);
    fb.add(2, 2, 4);
    fb.retval(2);
    BinaryImage img = single_function(std::move(fb));
    Cfg cfg = build_cfg(img, img.functions[0]);

    EXPECT_TRUE(cfg.well_formed());
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].start, kCodeBase);
    EXPECT_EQ(cfg.blocks[0].end, kCodeBase + 3 * kInstrSize);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
    EXPECT_EQ(cfg.reachable(), (std::vector<int>{0}));
    EXPECT_EQ(cfg.block_at(kCodeBase + kInstrSize), 0);
    EXPECT_EQ(cfg.block_at(kCodeBase + 3 * kInstrSize), -1);
}

/**
 * The diamond:
 *   B0: getarg r0; jz r0 -> B2
 *   B1: movi r2, 1; jmp -> B3
 *   B2: movi r2, 2        (fallthrough)
 *   B3: retval r2
 */
FunctionBuilder
diamond_body(std::uint32_t then_value, std::uint32_t else_value)
{
    FunctionBuilder fb;
    int l_else = fb.new_label();
    int l_join = fb.new_label();
    fb.getarg(0, 0);
    fb.jz(0, l_else);
    fb.movi(2, then_value);
    fb.jmp(l_join);
    fb.bind(l_else);
    fb.movi(2, else_value);
    fb.bind(l_join);
    fb.retval(2);
    return fb;
}

TEST(Cfg, DiamondBlocksAndEdges)
{
    BinaryImage img = single_function(diamond_body(1, 2));
    Cfg cfg = build_cfg(img, img.functions[0]);

    EXPECT_TRUE(cfg.well_formed());
    ASSERT_EQ(cfg.blocks.size(), 4u);
    EXPECT_EQ(cfg.blocks[0].first, 0);
    EXPECT_EQ(cfg.blocks[0].last, 2);
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<int>{1, 2}));
    EXPECT_EQ(cfg.blocks[1].succs, (std::vector<int>{3}));
    EXPECT_EQ(cfg.blocks[2].succs, (std::vector<int>{3}));
    EXPECT_TRUE(cfg.blocks[3].succs.empty());
    EXPECT_EQ(cfg.blocks[3].preds, (std::vector<int>{1, 2}));
    EXPECT_EQ(cfg.reachable(), (std::vector<int>{0, 1, 2, 3}));

    DomTree dom = dominator_tree(cfg);
    EXPECT_EQ(dom.idom[0], 0);
    EXPECT_EQ(dom.idom[1], 0);
    EXPECT_EQ(dom.idom[2], 0);
    EXPECT_EQ(dom.idom[3], 0); // join is dominated by the fork only
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_FALSE(dom.dominates(2, 3));
}

/**
 * The loop:
 *   B0: movi r2, 3
 *   B1: jz r2 -> B3        (header)
 *   B2: add r2, r2, -1; jmp -> B1
 *   B3: ret
 */
FunctionBuilder
loop_body()
{
    FunctionBuilder fb;
    int l_head = fb.new_label();
    int l_exit = fb.new_label();
    fb.movi(2, 3);
    fb.bind(l_head);
    fb.jz(2, l_exit);
    fb.add(2, 2, static_cast<std::int32_t>(-1));
    fb.jmp(l_head);
    fb.bind(l_exit);
    fb.ret();
    return fb;
}

TEST(Cfg, LoopBlocksDominatorsAndLiveness)
{
    BinaryImage img = single_function(loop_body());
    Cfg cfg = build_cfg(img, img.functions[0]);

    ASSERT_EQ(cfg.blocks.size(), 4u);
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<int>{1}));
    EXPECT_EQ(cfg.blocks[1].succs, (std::vector<int>{2, 3}));
    EXPECT_EQ(cfg.blocks[2].succs, (std::vector<int>{1}));
    EXPECT_EQ(cfg.blocks[1].preds, (std::vector<int>{0, 2}));

    DomTree dom = dominator_tree(cfg);
    EXPECT_EQ(dom.idom[1], 0);
    EXPECT_EQ(dom.idom[2], 1);
    EXPECT_EQ(dom.idom[3], 1);
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 3));

    Liveness live = liveness(cfg);
    EXPECT_FALSE(live.live_in(0, 2));  // defined at the top of B0
    EXPECT_TRUE(live.live_out(0, 2));  // feeds the header test
    EXPECT_TRUE(live.live_in(1, 2));
    EXPECT_TRUE(live.live_out(2, 2));  // loops back to the test
    EXPECT_FALSE(live.live_in(3, 2));  // dead after the exit
}

TEST(Cfg, UnreachableTailIsRecoveredButFlagged)
{
    FunctionBuilder fb;
    fb.ret();
    fb.nop(); // fell off the end: unreachable tail
    fb.ret();
    BinaryImage img = single_function(std::move(fb));
    Cfg cfg = build_cfg(img, img.functions[0]);

    ASSERT_EQ(cfg.blocks.size(), 2u);
    EXPECT_EQ(cfg.reachable(), (std::vector<int>{0}));
    EXPECT_EQ(dominator_tree(cfg).idom[1], -1);

    auto diags = verify_function(img, img.functions[0]);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, DiagKind::UnreachableBlock);
    EXPECT_EQ(diags[0].addr, kCodeBase + kInstrSize);
}

TEST(Cfg, TruncatedBodyIsTotal)
{
    BinaryImage img;
    img.code.assign(kInstrSize + 4, 0); // ret + 4 stray bytes
    img.code[0] = static_cast<std::uint8_t>(bir::Op::Ret);
    img.functions.push_back({kCodeBase, kInstrSize + 4});
    Cfg cfg = build_cfg(img, img.functions[0]);

    EXPECT_TRUE(cfg.truncated);
    EXPECT_FALSE(cfg.well_formed());
    ASSERT_EQ(cfg.slots.size(), 1u);
    EXPECT_TRUE(
        kinds(verify_function(img, img.functions[0]))
            .count(DiagKind::Undecodable));
}

TEST(Cfg, JumpIntoTruncatedTailHasNoEdge)
{
    // jmp -> the 4 stray trailing bytes the function claims but the
    // CFG cannot materialize as a slot. The jump must contribute
    // neither a leader nor an edge (it used to produce a successor of
    // -1 and corrupt memory).
    BinaryImage img;
    bir::Instr jmp;
    jmp.op = bir::Op::Jmp;
    jmp.imm = kCodeBase + kInstrSize;
    bir::encode(jmp, img.code);
    img.code.resize(kInstrSize + 4, 0);
    img.functions.push_back({kCodeBase, kInstrSize + 4});

    Cfg cfg = build_cfg(img, img.functions[0]);
    EXPECT_TRUE(cfg.truncated);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
    EXPECT_TRUE(
        kinds(verify_function(img, img.functions[0]))
            .count(DiagKind::Undecodable));
}

TEST(Cfg, JumpBeyondClampedBodyHasNoEdge)
{
    // The function claims 4 slots but the code section holds only 2;
    // a jump into the clamped-off region must not become a leader
    // (it used to index slots and slot_block out of bounds).
    BinaryImage img;
    bir::Instr jnz;
    jnz.op = bir::Op::Jnz;
    jnz.a = 0;
    jnz.imm = kCodeBase + 3 * kInstrSize;
    bir::encode(jnz, img.code);
    bir::Instr ret;
    ret.op = bir::Op::Ret;
    bir::encode(ret, img.code);
    img.functions.push_back({kCodeBase, 4 * kInstrSize});

    Cfg cfg = build_cfg(img, img.functions[0]);
    EXPECT_TRUE(cfg.truncated);
    ASSERT_EQ(cfg.blocks.size(), 2u);
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<int>{1}));

    auto diag_kinds = kinds(verify_function(img, img.functions[0]));
    EXPECT_TRUE(diag_kinds.count(DiagKind::Undecodable));
    EXPECT_TRUE(diag_kinds.count(DiagKind::TargetOutOfCode));
}

TEST(Verify, FunctionBelowCodeBaseIsDiagnosed)
{
    // load_image rejects such an entry, but in-memory callers (the
    // fuzzer, this test) may hand verify_function one; the slot below
    // code_base must yield a diagnostic, not a wrapped raw read.
    BinaryImage img;
    bir::Instr ret;
    ret.op = bir::Op::Ret;
    bir::encode(ret, img.code);
    bir::encode(ret, img.code);
    img.functions.push_back(
        {kCodeBase - kInstrSize, 2 * kInstrSize});

    auto diags = verify_function(img, img.functions[0]);
    EXPECT_TRUE(kinds(diags).count(DiagKind::Undecodable));
}

TEST(Cfg, DotListingHasClusters)
{
    BinaryImage img = single_function(diamond_body(1, 2));
    std::string dot = to_dot(img);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("cluster"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

// ---------------------------------------------------------------------
// Dataflow analyses
// ---------------------------------------------------------------------

TEST(Dataflow, ReachingDefsMergeAtJoin)
{
    BinaryImage img = single_function(diamond_body(1, 2));
    Cfg cfg = build_cfg(img, img.functions[0]);
    ReachingDefs rd = reaching_definitions(cfg);

    // Slot layout: 0 getarg, 1 jz, 2 movi, 3 jmp, 4 movi, 5 retval.
    EXPECT_EQ(rd.reaching(cfg, 1, 0), (std::set<int>{0}));
    EXPECT_EQ(rd.reaching(cfg, 5, 2), (std::set<int>{2, 4}));
    // r3 is never defined: only the entry pseudo-def reaches.
    EXPECT_EQ(rd.reaching(cfg, 5, 3), (std::set<int>{kUninitDef}));
}

TEST(Dataflow, ConstPropAcrossJoin)
{
    // Different constants on the two arms: the join loses them.
    BinaryImage img = single_function(diamond_body(1, 2));
    Cfg cfg = build_cfg(img, img.functions[0]);
    ConstProp cp = constant_propagation(cfg);
    EXPECT_EQ(cp.value_at(cfg, 5, 2).kind, ConstVal::NonConst);

    // Equal constants survive the join.
    BinaryImage same = single_function(diamond_body(7, 7));
    Cfg scfg = build_cfg(same, same.functions[0]);
    ConstProp scp = constant_propagation(scfg);
    EXPECT_EQ(scp.value_at(scfg, 5, 2), ConstVal::constant(7));
}

TEST(Dataflow, ConstPropThroughMovAndAdd)
{
    FunctionBuilder fb;
    fb.movi(1, 5);
    fb.mov(2, 1);
    fb.add(2, 2, 3);
    fb.retval(2);
    BinaryImage img = single_function(std::move(fb));
    Cfg cfg = build_cfg(img, img.functions[0]);
    ConstProp cp = constant_propagation(cfg);
    EXPECT_EQ(cp.value_at(cfg, 2, 2), ConstVal::constant(5));
    EXPECT_EQ(cp.value_at(cfg, 3, 2), ConstVal::constant(8));
    // Before its first definition a register is Undef.
    EXPECT_EQ(cp.value_at(cfg, 0, 1).kind, ConstVal::Undef);
}

// ---------------------------------------------------------------------
// Verifier: every diagnostic kind on a crafted negative
// ---------------------------------------------------------------------

TEST(Verify, CleanStraightLineFunction)
{
    FunctionBuilder fb;
    fb.movi(2, 1);
    fb.retval(2);
    BinaryImage img = single_function(std::move(fb));
    EXPECT_TRUE(verify_image(img).empty());
}

TEST(Verify, UndecodableOpcode)
{
    FunctionBuilder fb;
    fb.ret();
    BinaryImage img = single_function(std::move(fb));
    img.code[0] = 0xff;
    auto diags = verify_image(img);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].kind, DiagKind::Undecodable);
    EXPECT_EQ(diags[0].addr, kCodeBase);
}

TEST(Verify, BadRegisterField)
{
    FunctionBuilder fb;
    fb.movi(2, 1);
    fb.retval(2);
    BinaryImage img = single_function(std::move(fb));
    img.code[1] = 0x20; // movi destination field -> r32
    EXPECT_TRUE(kinds(verify_image(img)).count(DiagKind::BadRegister));
}

/** getarg r0; jz r0 -> next; ret -- the fallthrough keeps the exit
 *  reachable when the jump target is later corrupted. */
BinaryImage
patchable_jump_image()
{
    FunctionBuilder fb;
    int l = fb.new_label();
    fb.getarg(0, 0);
    fb.jz(0, l);
    fb.bind(l);
    fb.ret();
    return single_function(std::move(fb));
}

TEST(Verify, JumpTargetOutOfCode)
{
    BinaryImage img = patchable_jump_image();
    std::uint32_t jz_addr = kCodeBase + kInstrSize;
    patch_imm(img, jz_addr, 0); // address 0 is in no section
    auto diags = verify_image(img);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, DiagKind::TargetOutOfCode);
    EXPECT_EQ(diags[0].addr, jz_addr);
}

TEST(Verify, JumpTargetMisaligned)
{
    BinaryImage img = patchable_jump_image();
    std::uint32_t jz_addr = kCodeBase + kInstrSize;
    patch_imm(img, jz_addr, kCodeBase + 1);
    auto diags = verify_image(img);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, DiagKind::TargetMisaligned);
    EXPECT_EQ(diags[0].addr, jz_addr);
}

TEST(Verify, JumpEscapesFunction)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId g = ib.declare_function("g");
    {
        FunctionBuilder fb;
        int l = fb.new_label();
        fb.jmp(l);
        fb.bind(l);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(g, std::move(fb));
    }
    BinaryImage img = ib.link({});
    patch_imm(img, ib.func_addr(f), ib.func_addr(g));
    EXPECT_TRUE(kinds(verify_image(img))
                    .count(DiagKind::JumpEscapesFunction));
}

TEST(Verify, CallNotFunctionEntry)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId g = ib.declare_function("g");
    {
        FunctionBuilder fb;
        fb.call(g);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.nop();
        fb.ret();
        ib.define_function(g, std::move(fb));
    }
    BinaryImage img = ib.link({});
    // Retarget the call into the middle of g: aligned, in code, but
    // not an entry.
    patch_imm(img, ib.func_addr(f), ib.func_addr(g) + kInstrSize);
    EXPECT_EQ(kinds(verify_image(img)),
              (std::set<DiagKind>{DiagKind::CallNotFunctionEntry}));
}

TEST(Verify, CallThroughStubsIsClean)
{
    FunctionBuilder fb;
    fb.call_addr(bir::kAllocStub);
    fb.getret(1);
    fb.call_addr(bir::kPurecallStub);
    fb.retval(1);
    BinaryImage img = single_function(std::move(fb));
    EXPECT_TRUE(verify_image(img).empty());
}

TEST(Verify, CallIndThroughUndefinedRegister)
{
    FunctionBuilder fb;
    fb.icall(5); // r5 never defined anywhere
    fb.ret();
    BinaryImage img = single_function(std::move(fb));
    EXPECT_EQ(kinds(verify_image(img)),
              (std::set<DiagKind>{DiagKind::CallIndUndefined}));
}

TEST(Verify, CallIndProvablyNonEntry)
{
    FunctionBuilder fb;
    fb.movi(5, kCodeBase + 4); // constant, misaligned: no entry
    fb.icall(5);
    fb.ret();
    BinaryImage img = single_function(std::move(fb));
    EXPECT_EQ(kinds(verify_image(img)),
              (std::set<DiagKind>{DiagKind::CallIndUndefined}));
}

TEST(Verify, GetRetWithoutDominatingCall)
{
    FunctionBuilder fb;
    fb.getret(1);
    fb.retval(1);
    BinaryImage img = single_function(std::move(fb));
    EXPECT_EQ(kinds(verify_image(img)),
              (std::set<DiagKind>{DiagKind::GetRetNoCall}));
}

TEST(Verify, GetRetAfterCallOnOnePathOnly)
{
    // call on the then-arm only: the join's getret is not dominated
    // by a call.
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    FuncId g = ib.declare_function("g");
    {
        FunctionBuilder fb;
        int l_join = fb.new_label();
        fb.getarg(0, 0);
        fb.jz(0, l_join);
        fb.call(g);
        fb.bind(l_join);
        fb.getret(1);
        fb.retval(1);
        ib.define_function(f, std::move(fb));
    }
    {
        FunctionBuilder fb;
        fb.ret();
        ib.define_function(g, std::move(fb));
    }
    BinaryImage img = ib.link({});
    EXPECT_EQ(kinds(verify_image(img)),
              (std::set<DiagKind>{DiagKind::GetRetNoCall}));
}

TEST(Verify, UseWithoutReachingDef)
{
    FunctionBuilder fb;
    fb.retval(3); // r3 never defined
    BinaryImage img = single_function(std::move(fb));
    auto diags = verify_image(img);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, DiagKind::UseWithoutDef);
    EXPECT_EQ(diags[0].addr, kCodeBase);
}

TEST(Verify, DefOnEveryPathIsClean)
{
    // A register defined on both diamond arms is defined at the join.
    BinaryImage img = single_function(diamond_body(1, 2));
    EXPECT_TRUE(verify_image(img).empty());
}

TEST(Verify, VtableSlotInvalid)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("ctor");
    bir::VtId vt = ib.add_vtable("T", 1);
    ib.set_slot(vt, 0, f);
    {
        FunctionBuilder fb;
        fb.getarg(2, 0);       // this
        fb.movi_vtable(8, vt); // materialize the vtable address
        fb.store(2, 0, 8);     // install the vptr
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage img = ib.link({});
    ASSERT_TRUE(verify_image(img).empty());

    // Bump slot 0 off the function entry.
    std::size_t off = ib.vtable_addr(vt) - img.data_base;
    img.data[off] += 1;
    auto diags = verify_image(img);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, DiagKind::VtableSlotInvalid);
    EXPECT_EQ(diags[0].addr, ib.vtable_addr(vt));
}

TEST(Verify, AllKindsAreDistinctAndNamed)
{
    std::set<std::string> names;
    for (DiagKind kind :
         {DiagKind::Undecodable, DiagKind::BadRegister,
          DiagKind::TargetOutOfCode, DiagKind::TargetMisaligned,
          DiagKind::JumpEscapesFunction,
          DiagKind::CallNotFunctionEntry, DiagKind::CallIndUndefined,
          DiagKind::GetRetNoCall, DiagKind::UseWithoutDef,
          DiagKind::VtableSlotInvalid, DiagKind::UnreachableBlock})
        names.insert(diag_name(kind));
    EXPECT_EQ(names.size(), 11u);
}

// ---------------------------------------------------------------------
// Verifier on compiled corpus images
// ---------------------------------------------------------------------

TEST(Verify, CompiledCorpusImageIsClean)
{
    corpus::CorpusProgram prog = corpus::streams_program();
    toyc::CompileResult built = toyc::compile(prog.program, prog.options);
    EXPECT_TRUE(verify_image(built.image).empty());
}

TEST(Verify, OpcodeBitFlipsTripTheVerifier)
{
    // Flip the high bit of the opcode byte of several slots: every
    // flip makes that opcode invalid (valid opcodes are < 0x80), so
    // the verifier must report Undecodable at exactly that address --
    // and restoring the byte must restore cleanliness.
    corpus::CorpusProgram prog = corpus::streams_program();
    toyc::CompileResult built = toyc::compile(prog.program, prog.options);
    BinaryImage img = built.image;
    ASSERT_TRUE(verify_image(img).empty());

    for (std::size_t slot = 0; slot < 5; ++slot) {
        std::size_t off = slot * kInstrSize;
        ASSERT_LT(off, img.code.size());
        img.code[off] ^= 0x80;
        auto diags = verify_image(img);
        EXPECT_TRUE(kinds(diags).count(DiagKind::Undecodable))
            << "flip at slot " << slot;
        img.code[off] ^= 0x80;
        EXPECT_TRUE(verify_image(img).empty())
            << "restore at slot " << slot;
    }
}

TEST(Verify, ParallelVerifyIsBitIdentical)
{
    corpus::CorpusProgram prog = corpus::datasources_program();
    toyc::CompileResult built = toyc::compile(prog.program, prog.options);
    BinaryImage img = built.image;
    img.code[0] ^= 0x80; // give the verifier something to say
    auto serial = verify_image(img, 1);
    auto parallel = verify_image(img, 4);
    EXPECT_EQ(serial, parallel);
    EXPECT_FALSE(serial.empty());
}

} // namespace

/**
 * @file
 * Tests over the 19 Table-2 benchmark programs: sizes, resolvability
 * split, and the headline property (SLMs drastically reduce added
 * types at a small missing cost).
 */
#include <gtest/gtest.h>

#include "support/error.h"
#include "corpus/benchmarks.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

struct BenchRun {
    corpus::BenchmarkSpec spec;
    eval::GroundTruth gt;
    core::ReconstructionResult result;
    eval::AppDistance without_slm;
    eval::AppDistance with_slm;
};

BenchRun
run_benchmark(corpus::BenchmarkSpec spec)
{
    BenchRun r{std::move(spec), {}, {}, {}, {}};
    toyc::CompileResult compiled =
        toyc::compile(r.spec.program.program, r.spec.program.options);
    r.result = core::reconstruct(compiled.image);
    r.gt = eval::ground_truth_from_debug(compiled.debug);
    r.without_slm = eval::application_distance_structural(
        r.result.structural, r.gt);
    r.with_slm = eval::application_distance_worst(r.result, r.gt);
    return r;
}

class Table2 : public ::testing::TestWithParam<std::string> {};

TEST_P(Table2, MatchesPaperShape)
{
    BenchRun r = run_benchmark(corpus::benchmark_by_name(GetParam()));

    // Type counts match the paper's "num of types" column.
    EXPECT_EQ(static_cast<int>(r.gt.types.size()), r.spec.paper_types);

    // Resolvability matches the table's above/below-line split.
    EXPECT_EQ(r.result.ambiguous_families == 0,
              r.spec.paper_resolvable);

    // SLMs never increase the added-type count, and for the
    // behavioral benchmarks they reduce it strictly (the paper's
    // "drastic decrease").
    EXPECT_LE(r.with_slm.avg_added, r.without_slm.avg_added + 1e-9);
    if (!r.spec.paper_resolvable && r.spec.paper.added_nostat > 0.5) {
        EXPECT_LE(r.with_slm.avg_added,
                  0.5 * r.without_slm.avg_added + 1e-9);
    }

    // Missing may only grow slightly (the paper's stated trade-off).
    EXPECT_LE(r.with_slm.avg_missing,
              r.without_slm.avg_missing + 0.25);

    // Stay in the neighbourhood of the published numbers.
    EXPECT_NEAR(r.without_slm.avg_missing,
                r.spec.paper.missing_nostat, 0.25);
    EXPECT_NEAR(r.with_slm.avg_missing, r.spec.paper.missing_slm,
                0.25);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table2,
    ::testing::Values("AntispyComplete", "bafprp", "cppcheck",
                      "MidiLib", "patl", "pop3", "smtp", "tinyxml",
                      "tinyxmlSTL", "yafe", "Analyzer",
                      "CGridListCtrlEx", "echoparams", "gperf",
                      "libctemplate", "ShowTraf", "Smoothing",
                      "td_unittest", "tinyserver"));

TEST(Table2Exact, EchoparamsIsExact)
{
    BenchRun r = run_benchmark(corpus::benchmark_by_name("echoparams"));
    EXPECT_DOUBLE_EQ(r.without_slm.avg_added, 2.25);
    EXPECT_DOUBLE_EQ(r.with_slm.avg_added, 0.0);
    EXPECT_DOUBLE_EQ(r.with_slm.avg_missing, 0.0);
}

TEST(Table2Exact, TdUnittestIsExact)
{
    BenchRun r = run_benchmark(corpus::benchmark_by_name("td_unittest"));
    EXPECT_DOUBLE_EQ(r.without_slm.avg_added, 1.0);
    EXPECT_DOUBLE_EQ(r.with_slm.avg_added, 0.5);
}

TEST(Table2Exact, TinyxmlMissingMatches)
{
    BenchRun r = run_benchmark(corpus::benchmark_by_name("tinyxml"));
    EXPECT_NEAR(r.with_slm.avg_missing, 8.0 / 9.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.with_slm.avg_added, 0.0);
}

TEST(Table2Exact, YafeAddedMatches)
{
    BenchRun r = run_benchmark(corpus::benchmark_by_name("yafe"));
    EXPECT_NEAR(r.with_slm.avg_added, 0.2, 1e-9);
    EXPECT_DOUBLE_EQ(r.with_slm.avg_missing, 0.0);
}

TEST(Table2, LookupUnknownBenchmarkFails)
{
    EXPECT_THROW(corpus::benchmark_by_name("skype"),
                 support::FatalError);
}

TEST(Table2, NineteenBenchmarks)
{
    auto specs = corpus::table2_benchmarks();
    EXPECT_EQ(specs.size(), 19u);
    int resolvable = 0;
    for (const auto& spec : specs)
        resolvable += spec.paper_resolvable;
    EXPECT_EQ(resolvable, 10);
}

} // namespace

/**
 * @file
 * Robustness: the analyses must handle adversarial/degenerate images
 * gracefully -- returning empty results or raising FatalError, never
 * crashing or hanging.
 */
#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "bir/builder.h"
#include "rock/pipeline.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace rock;
using namespace rock::bir;

TEST(Robustness, EmptyImage)
{
    BinaryImage image;
    analysis::AnalysisResult result = analysis::analyze(image);
    EXPECT_TRUE(result.vtables.empty());
    EXPECT_TRUE(result.type_tracelets.empty());
    core::ReconstructionResult recon = core::reconstruct(image);
    EXPECT_EQ(recon.hierarchy.size(), 0);
}

TEST(Robustness, RandomBytesEitherFatalOrEmpty)
{
    support::Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        BinaryImage image;
        std::size_t code_size =
            (1 + rng.index(64)) * kInstrSize;
        for (std::size_t i = 0; i < code_size; ++i) {
            image.code.push_back(
                static_cast<std::uint8_t>(rng.index(256)));
        }
        for (std::size_t i = 0; i < 64; ++i) {
            image.data.push_back(
                static_cast<std::uint8_t>(rng.index(256)));
        }
        image.functions.push_back(FunctionEntry{
            image.code_base,
            static_cast<std::uint32_t>(image.code.size())});
        try {
            core::ReconstructionResult result =
                core::reconstruct(image);
            // Random bytes rarely form valid types; whatever comes
            // back must at least be internally consistent.
            EXPECT_LE(result.hierarchy.size(), 16);
        } catch (const support::FatalError&) {
            // Undecodable instruction streams are a user-level error.
        }
    }
}

TEST(Robustness, ValidOpcodesGarbageOperands)
{
    // Instructions decode but reference nonsense registers/targets.
    support::Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        BinaryImage image;
        int n = 4 + static_cast<int>(rng.index(40));
        for (int i = 0; i < n; ++i) {
            Instr instr;
            instr.op = static_cast<Op>(rng.index(16));
            instr.a = static_cast<std::uint8_t>(rng.index(16));
            instr.b = static_cast<std::uint8_t>(rng.index(16));
            instr.imm = static_cast<std::uint32_t>(
                rng.uniform(0, 1 << 22));
            encode(instr, image.code);
        }
        image.functions.push_back(FunctionEntry{
            image.code_base,
            static_cast<std::uint32_t>(image.code.size())});
        // Data full of plausible-looking code addresses.
        for (int w = 0; w < 16; ++w) {
            std::uint32_t value =
                image.code_base +
                static_cast<std::uint32_t>(rng.index(
                    static_cast<std::size_t>(n))) *
                    kInstrSize;
            image.data.push_back(
                static_cast<std::uint8_t>(value & 0xff));
            image.data.push_back(
                static_cast<std::uint8_t>((value >> 8) & 0xff));
            image.data.push_back(
                static_cast<std::uint8_t>((value >> 16) & 0xff));
            image.data.push_back(
                static_cast<std::uint8_t>((value >> 24) & 0xff));
        }
        EXPECT_NO_THROW({
            core::ReconstructionResult result =
                core::reconstruct(image);
            (void)result;
        }) << "trial "
           << trial;
    }
}

TEST(Robustness, BranchTargetsOutsideFunctionTerminate)
{
    // A jump to a bogus address must not hang the executor.
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    {
        FunctionBuilder fb;
        fb.nop();
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage image = ib.link({});
    // Patch the nop into a jump far past the function end.
    Instr jump;
    jump.op = Op::Jmp;
    jump.imm = image.code_base + 0x1000;
    std::vector<std::uint8_t> encoded;
    encode(jump, encoded);
    std::copy(encoded.begin(), encoded.end(), image.code.begin());
    EXPECT_NO_THROW(analysis::analyze(image));
}

TEST(Robustness, SelfCallingFunctionTerminates)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    {
        FunctionBuilder fb;
        int top = fb.new_label();
        fb.bind(top);
        fb.jmp(top); // tight infinite loop
        ib.define_function(f, std::move(fb));
    }
    BinaryImage image = ib.link({});
    analysis::SymExecConfig config;
    config.max_steps = 100;
    EXPECT_NO_THROW(analysis::analyze(image, config));
}

TEST(Robustness, HugeArgumentIndicesIgnored)
{
    ImageBuilder ib;
    FuncId f = ib.declare_function("f");
    {
        FunctionBuilder fb;
        fb.setarg(255, 3);
        fb.getarg(3, 255);
        fb.ret();
        ib.define_function(f, std::move(fb));
    }
    BinaryImage image = ib.link({});
    EXPECT_NO_THROW(analysis::analyze(image));
}

} // namespace

/**
 * @file
 * Unit tests for the structural analysis (paper Section 5).
 */
#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "corpus/builder.h"
#include "corpus/examples.h"
#include "structural/structural.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::structural;
using analysis::VTableInfo;

/** Compile and analyze, returning everything the tests inspect. */
struct Analyzed {
    toyc::CompileResult compiled;
    analysis::AnalysisResult analysis;
    StructuralResult structural;

    int
    index(const std::string& cls) const
    {
        return structural.index_of(
            compiled.debug.class_to_vtable.at(cls));
    }
};

Analyzed
run(const corpus::CorpusProgram& program)
{
    Analyzed a;
    a.compiled = toyc::compile(program.program, program.options);
    a.analysis = analysis::analyze(a.compiled.image);
    a.structural = structural_analysis(a.analysis.vtables,
                                       a.analysis.evidence,
                                       a.analysis.ctor_types);
    return a;
}

TEST(Families, SharedImplementationsCluster)
{
    Analyzed a = run(corpus::streams_program());
    ASSERT_EQ(a.structural.types.size(), 3u);
    // All three stream classes share Stream::send -> one family.
    EXPECT_EQ(a.structural.num_families(), 1);
}

TEST(Families, UnrelatedTreesStaySeparate)
{
    corpus::ProgramBuilder b("two_trees");
    b.cls("A", {}, {"fa"}, {}, 1);
    b.cls("B", {"A"}, {"fb"}, {}, 1);
    b.cls("X", {}, {"fx"}, {}, 1);
    b.cls("Y", {"X"}, {"fy"}, {}, 1);
    b.motif("A", {"fa"});
    b.motif("B", {"fb"});
    b.motif("X", {"fx"});
    b.motif("Y", {"fy"});
    b.standard_scenarios(1);
    corpus::CorpusProgram program;
    program.program = b.build();
    Analyzed a = run(program);
    EXPECT_EQ(a.structural.num_families(), 2);
    EXPECT_EQ(a.structural.family[static_cast<std::size_t>(
                  a.index("A"))],
              a.structural.family[static_cast<std::size_t>(
                  a.index("B"))]);
    EXPECT_NE(a.structural.family[static_cast<std::size_t>(
                  a.index("A"))],
              a.structural.family[static_cast<std::size_t>(
                  a.index("X"))]);
}

TEST(Families, PurecallIsNotAFingerprint)
{
    // Two unrelated abstract-rooted trees whose vtables both contain
    // _purecall entries must not merge.
    corpus::ProgramBuilder b("pure_trees");
    b.cls("A", {}, {"fa", "ga"}, {}, 1);
    b.pure("A", "fa");
    b.cls("B", {"A"}, {}, {"fa"}, 1);
    b.cls("X", {}, {"fx", "gx"}, {}, 1);
    b.pure("X", "fx");
    b.cls("Y", {"X"}, {}, {"fx"}, 1);
    b.motif("B", {"fa", "ga"});
    b.motif("Y", {"fx", "gx"});
    b.standard_scenarios(1);
    corpus::CorpusProgram program;
    program.program = b.build();
    // Keep abstract vtables so purecall actually appears.
    program.options.omit_abstract_classes = false;
    Analyzed a = run(program);
    ASSERT_EQ(a.structural.types.size(), 4u);
    EXPECT_EQ(a.structural.num_families(), 2);
}

TEST(Elimination, Rule1SlotCounts)
{
    Analyzed a = run(corpus::streams_program());
    int stream = a.index("Stream");                // 1 slot
    int confirmable = a.index("ConfirmableStream"); // 2 slots
    int flushable = a.index("FlushableStream");     // 3 slots

    // Stream (smallest) can have no parent.
    EXPECT_TRUE(a.structural
                    .possible_parents[static_cast<std::size_t>(stream)]
                    .empty());
    // Confirmable's only possible parent is Stream.
    EXPECT_EQ(a.structural.possible_parents[static_cast<std::size_t>(
                  confirmable)],
              (std::set<int>{stream}));
    // Flushable may derive from either (the paper's Fig. 6 dilemma).
    EXPECT_EQ(a.structural.possible_parents[static_cast<std::size_t>(
                  flushable)],
              (std::set<int>{stream, confirmable}));
}

TEST(Elimination, Rule2PureSlots)
{
    // Abstract A (pure at slot 0) and concrete sibling-shaped B with
    // the same slot count: B cannot be A's parent because A would be
    // re-abstracting an implemented slot; A *can* be B's parent.
    corpus::ProgramBuilder b("rule2");
    b.cls("A", {}, {"f", "g"}, {}, 1);
    b.pure("A", "f");
    b.cls("B", {"A"}, {}, {"f"}, 1);
    b.motif("B", {"f", "g"});
    b.standard_scenarios(1);
    corpus::CorpusProgram program;
    program.program = b.build();
    program.options.omit_abstract_classes = false;
    // Remove ctor cues so rule 3 does not short-circuit the test.
    program.options.parent_ctor_calls = false;
    Analyzed a = run(program);

    int abstract_a = a.index("A");
    int concrete_b = a.index("B");
    const auto& parents_of_a =
        a.structural
            .possible_parents[static_cast<std::size_t>(abstract_a)];
    const auto& parents_of_b =
        a.structural
            .possible_parents[static_cast<std::size_t>(concrete_b)];
    EXPECT_EQ(parents_of_a.count(concrete_b), 0u);
    EXPECT_EQ(parents_of_b.count(abstract_a), 1u);
}

TEST(Elimination, Rule3CtorCallForcesParent)
{
    corpus::CorpusProgram program = corpus::datasources_program();
    program.options.parent_ctor_calls = true; // keep the cues
    Analyzed a = run(program);

    int base = a.index("DataSource");
    int internal = a.index("InternalDataSource");
    int cached = a.index("CachedInternalSource");

    auto forced = a.structural.forced_parents;
    ASSERT_EQ(forced.count(internal), 1u);
    EXPECT_EQ(forced.at(internal), base);
    ASSERT_EQ(forced.count(cached), 1u);
    EXPECT_EQ(forced.at(cached), internal);
    // Forced parents narrow the candidate set to exactly one.
    EXPECT_EQ(a.structural.possible_parents[static_cast<std::size_t>(
                  cached)],
              (std::set<int>{internal}));
}

TEST(Elimination, Rule3JoinsFamilies)
{
    // A child that overrides ALL parent methods shares nothing with
    // the parent's vtable, but the ctor-call evidence re-joins the
    // families.
    corpus::ProgramBuilder b("rejoin");
    b.cls("P", {}, {"f", "g"}, {}, 1);
    b.cls("C", {"P"}, {"h"}, {"f", "g"}, 1);
    b.motif("P", {"f", "g"});
    b.motif("C", {"h"});
    b.standard_scenarios(1);
    corpus::CorpusProgram with_cue;
    with_cue.program = b.build();
    with_cue.options.parent_ctor_calls = true;
    Analyzed joined = run(with_cue);
    EXPECT_EQ(joined.structural.num_families(), 1);

    corpus::CorpusProgram no_cue = with_cue;
    no_cue.options.parent_ctor_calls = false;
    Analyzed split = run(no_cue);
    EXPECT_EQ(split.structural.num_families(), 2);
}

TEST(MultipleInheritance, ParentCountsAndSecondaries)
{
    Analyzed a = run(corpus::multiple_inheritance_program());
    int model = a.index("Model");
    ASSERT_EQ(a.structural.parent_counts.count(model), 1u);
    EXPECT_EQ(a.structural.parent_counts.at(model), 2);

    // Exactly one secondary vtable, owned by Model.
    ASSERT_EQ(a.structural.secondary_of.size(), 1u);
    EXPECT_EQ(a.structural.secondary_of.begin()->second, model);
}

TEST(StructuralResult, IndexAndMembers)
{
    Analyzed a = run(corpus::streams_program());
    EXPECT_EQ(a.structural.index_of(0xdeadbeef), -1);
    auto members = a.structural.family_members(0);
    EXPECT_EQ(members.size(), 3u);
    for (int m : members) {
        EXPECT_EQ(a.structural.family[static_cast<std::size_t>(m)], 0);
    }
}

} // namespace

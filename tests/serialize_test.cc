/**
 * @file
 * Tests for the VMI1 image serialization.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "bir/serialize.h"
#include "corpus/examples.h"
#include "corpus/generator.h"
#include "fuzz/fuzzer.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "support/error.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::bir;
using rock::support::FatalError;

BinaryImage
sample_image(bool strip = true)
{
    corpus::CorpusProgram example = corpus::streams_program();
    example.options.link.strip_symbols = strip;
    example.options.link.emit_rtti = !strip;
    return toyc::compile(example.program, example.options).image;
}

TEST(Serialize, RoundTripPreservesEverything)
{
    for (bool strip : {true, false}) {
        BinaryImage original = sample_image(strip);
        BinaryImage loaded = load_image(save_image(original));
        EXPECT_EQ(loaded.code, original.code);
        EXPECT_EQ(loaded.data, original.data);
        EXPECT_EQ(loaded.code_base, original.code_base);
        EXPECT_EQ(loaded.data_base, original.data_base);
        EXPECT_EQ(loaded.functions, original.functions);
        EXPECT_EQ(loaded.symbols, original.symbols);
        EXPECT_EQ(loaded.has_rtti, original.has_rtti);
        EXPECT_EQ(loaded.entry, original.entry);
    }
}

TEST(Serialize, EntryRoundTripsAtNonZeroFunctionIndex)
{
    // Usage functions link after every method/ctor/dtor, so the
    // compiler-recorded entry must not be the first function-table
    // entry -- the round trip has to carry the address, not assume
    // index 0.
    corpus::GeneratorSpec spec;
    spec.num_classes = 4;
    spec.entry_usage = 3; // declare the 4th usage first
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    const BinaryImage& image = compiled.image;
    ASSERT_NE(image.entry, 0u);
    ASSERT_TRUE(image.is_function_start(image.entry));
    ASSERT_NE(image.entry, image.functions.front().addr);

    BinaryImage loaded = load_image(save_image(image));
    EXPECT_EQ(loaded.entry, image.entry);
}

TEST(Serialize, EntryUsageKnobRotatesTheEntry)
{
    // Usage functions link in declaration order, so the entry
    // *address* is the same either way; the knob changes which usage
    // function occupies it.
    corpus::GeneratorSpec spec;
    spec.num_classes = 4;
    corpus::GeneratorSpec rotated = spec;
    rotated.entry_usage = 1;
    toyc::CompileResult a =
        toyc::compile(corpus::generate_program(spec));
    toyc::CompileResult b =
        toyc::compile(corpus::generate_program(rotated));
    ASSERT_NE(a.image.entry, 0u);
    ASSERT_NE(b.image.entry, 0u);
    EXPECT_NE(a.debug.func_names.at(a.image.entry),
              b.debug.func_names.at(b.image.entry));
    // Rotation only permutes the usage list.
    EXPECT_EQ(a.image.functions.size(), b.image.functions.size());
}

TEST(Serialize, LegacyStreamWithoutEntryLoadsAsZero)
{
    // Pre-entry VMI1 writers ended the stream at the symbol table.
    // Dropping the trailing entry word reproduces such a file.
    BinaryImage original = sample_image();
    ASSERT_NE(original.entry, 0u);
    auto bytes = save_image(original);
    bytes.resize(bytes.size() - 4);
    BinaryImage loaded = load_image(bytes);
    EXPECT_EQ(loaded.entry, 0u);
    EXPECT_EQ(loaded.functions, original.functions);
}

TEST(Serialize, RejectsEntryOutsideTheFunctionTable)
{
    BinaryImage image = sample_image();
    image.entry = image.code_base + 1; // mid-instruction, no function
    EXPECT_THROW(load_image(save_image(image)), FatalError);
}

TEST(Serialize, ReconstructionIdenticalAfterRoundTrip)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    BinaryImage loaded = load_image(save_image(compiled.image));
    core::ReconstructionResult a = core::reconstruct(compiled.image);
    core::ReconstructionResult b = core::reconstruct(loaded);
    ASSERT_EQ(a.hierarchy.size(), b.hierarchy.size());
    for (int v = 0; v < a.hierarchy.size(); ++v)
        EXPECT_EQ(a.hierarchy.parent(v), b.hierarchy.parent(v));
}

TEST(Serialize, RejectsBadMagic)
{
    auto bytes = save_image(sample_image());
    bytes[0] ^= 0xff;
    EXPECT_THROW(load_image(bytes), FatalError);
}

TEST(Serialize, RejectsTruncation)
{
    auto bytes = save_image(sample_image());
    for (std::size_t cut :
         {std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(cut));
        EXPECT_THROW(load_image(truncated), FatalError) << cut;
    }
}

TEST(Serialize, RejectsTrailingGarbage)
{
    auto bytes = save_image(sample_image());
    bytes.push_back(0);
    EXPECT_THROW(load_image(bytes), FatalError);
}

TEST(Serialize, RejectsOutOfRangeFunctions)
{
    BinaryImage image = sample_image();
    image.functions.push_back(FunctionEntry{0xffff0000, 8});
    auto bytes = save_image(image);
    EXPECT_THROW(load_image(bytes), FatalError);
}

TEST(Serialize, FileRoundTrip)
{
    BinaryImage original = sample_image();
    std::string path = ::testing::TempDir() + "rock_serialize_test.vmi";
    write_image_file(original, path);
    BinaryImage loaded = read_image_file(path);
    EXPECT_EQ(loaded.code, original.code);
    EXPECT_EQ(loaded.functions, original.functions);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsFatal)
{
    EXPECT_THROW(read_image_file("/nonexistent/nope.vmi"), FatalError);
}

TEST(Serialize, PropertyRoundTripOverGeneratedPrograms)
{
    // Property over the fuzzer's meta-distribution: for any sampled
    // generator spec, serializing the compiled image and loading it
    // back preserves every field and yields a bit-identical
    // reconstruction. Covers degenerate, deep, wide, fold-noise and
    // MI-heavy shapes rather than one hand-picked example.
    for (std::uint64_t seed : {1u, 2u, 5u, 9u, 13u, 27u}) {
        SCOPED_TRACE(seed);
        corpus::GeneratorSpec spec = fuzz::sample_spec(seed);
        toyc::CompileResult compiled =
            toyc::compile(corpus::generate_program(spec));
        BinaryImage loaded =
            load_image(save_image(compiled.image));
        EXPECT_EQ(loaded.code, compiled.image.code);
        EXPECT_EQ(loaded.data, compiled.image.data);
        EXPECT_EQ(loaded.code_base, compiled.image.code_base);
        EXPECT_EQ(loaded.data_base, compiled.image.data_base);
        EXPECT_EQ(loaded.functions, compiled.image.functions);
        EXPECT_EQ(loaded.symbols, compiled.image.symbols);
        EXPECT_EQ(loaded.has_rtti, compiled.image.has_rtti);
        EXPECT_EQ(loaded.entry, compiled.image.entry);

        core::ReconstructionResult a =
            core::reconstruct(compiled.image);
        core::ReconstructionResult b = core::reconstruct(loaded);
        ASSERT_EQ(a.hierarchy.size(), b.hierarchy.size());
        for (int v = 0; v < a.hierarchy.size(); ++v) {
            EXPECT_EQ(a.hierarchy.parent(v), b.hierarchy.parent(v));
            EXPECT_EQ(a.hierarchy.parents(v),
                      b.hierarchy.parents(v));
        }
        EXPECT_EQ(a.sorted_distances(), b.sorted_distances());
    }
}

} // namespace

/**
 * @file
 * Unit tests for the corpus program builder and its behavioral-motif
 * machinery.
 */
#include <gtest/gtest.h>

#include "corpus/builder.h"
#include "support/error.h"
#include "toyc/compiler.h"
#include "toyc/sema.h"

namespace {

using namespace rock;
using corpus::ProgramBuilder;
using rock::support::FatalError;

TEST(Builder, ClassesAndMethods)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"f", "g"}, {}, 2);
    b.cls("B", {"A"}, {"h"}, {"f"}, 1);
    toyc::Program prog = b.build();
    ASSERT_EQ(prog.classes.size(), 2u);
    EXPECT_EQ(prog.classes[0].num_fields, 2);
    // B: one new method + one override = two declarations.
    EXPECT_EQ(prog.classes[1].methods.size(), 2u);
    EXPECT_EQ(prog.classes[1].parents,
              (std::vector<std::string>{"A"}));
}

TEST(Builder, MethodBodiesAreDistinctByDefault)
{
    // The anti-folding tags must make every method body unique.
    ProgramBuilder b("t");
    b.cls("A", {}, {"f"}, {}, 1);
    b.cls("B", {}, {"f"}, {}, 1);
    toyc::Program prog = b.build();
    toyc::CompileResult out = toyc::compile(prog);
    EXPECT_EQ(out.folded, 0u);
}

TEST(Builder, NoiseMethodsFoldAcrossClasses)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"f"}, {}, 1);
    b.cls("B", {}, {"g"}, {}, 1);
    b.noise_method("A", "n1", 5);
    b.noise_method("B", "n2", 5);
    toyc::CompileResult out = toyc::compile(b.build());
    EXPECT_GE(out.folded, 1u);

    // Different noise ids stay distinct.
    ProgramBuilder b2("t2");
    b2.cls("A", {}, {"f"}, {}, 1);
    b2.cls("B", {}, {"g"}, {}, 1);
    b2.noise_method("A", "n1", 5);
    b2.noise_method("B", "n2", 6);
    EXPECT_EQ(toyc::compile(b2.build()).folded, 0u);
}

TEST(Builder, PureMarksMethodsAbstract)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"f", "g"}, {}, 1);
    b.pure("A", "f");
    toyc::Program prog = b.build();
    toyc::Sema sema(prog);
    EXPECT_TRUE(sema.layout("A").abstract);
    EXPECT_THROW(b.pure("A", "missing"), FatalError);
}

TEST(Builder, MotifsConcatenateAlongChain)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"fa"}, {}, 1);
    b.cls("B", {"A"}, {"fb"}, {}, 1);
    b.cls("C", {"B"}, {"fc"}, {}, 1);
    b.motif("A", {"fa"});
    b.motif("B", {"fb", "fb"});
    b.motif("C", {"fc"});
    b.add_scenario("C");
    toyc::Program prog = b.build();
    ASSERT_EQ(prog.usages.size(), 1u);
    const auto& body = prog.usages[0].body;
    // new + fa + fb + fb + fc = 5 statements, root motif first.
    ASSERT_EQ(body.size(), 5u);
    EXPECT_EQ(body[0].kind, toyc::StmtKind::NewObject);
    EXPECT_EQ(body[1].method, "fa");
    EXPECT_EQ(body[2].method, "fb");
    EXPECT_EQ(body[3].method, "fb");
    EXPECT_EQ(body[4].method, "fc");
}

TEST(Builder, StandardScenariosSkipAbstract)
{
    ProgramBuilder b("t");
    b.cls("Abs", {}, {"f", "g"}, {}, 1);
    b.pure("Abs", "f");
    b.cls("Conc", {"Abs"}, {}, {"f"}, 1);
    b.motif("Abs", {"g"});
    b.motif("Conc", {"f"});
    b.standard_scenarios(2);
    toyc::Program prog = b.build();
    // Only the concrete class gets scenarios.
    EXPECT_EQ(prog.usages.size(), 2u);
    for (const auto& fn : prog.usages) {
        EXPECT_EQ(fn.body[0].class_name, "Conc");
    }
    // Scenario variants differ so they do not fold into one function.
    EXPECT_NE(prog.usages[0].body.size(),
              prog.usages[1].body.size());
}

TEST(Builder, StandardScenariosCompileCleanly)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"fa"}, {}, 1);
    b.cls("B", {"A"}, {"fb"}, {}, 1);
    b.motif("A", {"fa"});
    b.motif("B", {"fb"});
    b.standard_scenarios(3);
    toyc::CompileResult out = toyc::compile(b.build());
    EXPECT_EQ(out.debug.types.size(), 2u);
}

TEST(Builder, UnknownClassReferencesAreFatal)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"f"}, {}, 1);
    EXPECT_THROW(b.motif("Ghost", {"f"}), FatalError);
    EXPECT_THROW(b.method_body("Ghost", "f", {}), FatalError);
    EXPECT_THROW(b.method_body("A", "ghost", {}), FatalError);
    EXPECT_THROW(b.noise_method("Ghost", "n", 1), FatalError);
}

TEST(Builder, CtorBodyAppends)
{
    ProgramBuilder b("t");
    b.cls("A", {}, {"f"}, {}, 2);
    b.ctor_body("A", {toyc::Stmt::write_field("this", 0),
                      toyc::Stmt::write_field("this", 1)});
    toyc::Program prog = b.build();
    EXPECT_EQ(prog.classes[0].ctor_body.size(), 2u);
    // Compiles and the ctor body events show up behaviorally.
    toyc::CompileResult out = toyc::compile(prog);
    EXPECT_FALSE(out.image.functions.empty());
}

} // namespace

/**
 * @file
 * Tests for the content-addressed artifact store (cache/) and its
 * integration with reconstruct(): disk-tier robustness (truncation,
 * bit flips, stale schema versions are misses, never crashes),
 * LRU eviction under a byte budget, first-wins insertion under
 * concurrency, fingerprint discipline (config knobs invalidate,
 * thread counts never do), and end-to-end warm bit-identity at
 * several worker counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cache/artifact_cache.h"
#include "corpus/generator.h"
#include "rock/artifacts.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

/** Fresh scratch directory under the system temp dir. */
class TempDir {
  public:
    explicit TempDir(const std::string& tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("rock_cache_test_" + tag +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

cache::ArtifactKey
key_of(const std::string& kind, std::uint64_t content,
       std::uint64_t fp)
{
    cache::ArtifactKey key;
    key.kind = kind;
    key.content = content;
    key.fingerprint = fp;
    return key;
}

std::vector<std::uint8_t>
blob_of(std::initializer_list<int> values)
{
    cache::ByteWriter w;
    for (int v : values)
        w.i32(v);
    return w.take();
}

/** The single .rkac file for @p kind in @p dir (asserts uniqueness). */
std::filesystem::path
single_entry_file(const std::string& dir, const std::string& kind)
{
    std::filesystem::path found;
    int matches = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(kind + "-", 0) == 0) {
            found = entry.path();
            ++matches;
        }
    }
    EXPECT_EQ(matches, 1) << "expected exactly one '" << kind
                          << "' entry in " << dir;
    return found;
}

TEST(ArtifactCache, MemoryRoundTripAndStats)
{
    cache::ArtifactCache store{cache::CacheOptions{}};
    auto key = key_of("symexec", 1, 2);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(store.get(key, out));
    store.put(key, blob_of({7, 8, 9}));
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(out, blob_of({7, 8, 9}));
    cache::CacheStats stats = store.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(ArtifactCache, FirstPutWins)
{
    cache::ArtifactCache store{cache::CacheOptions{}};
    auto key = key_of("slm", 3, 4);
    store.put(key, blob_of({1}));
    store.put(key, blob_of({2}));
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(key, out));
    EXPECT_EQ(out, blob_of({1}));
}

TEST(ArtifactCache, DiskTierSurvivesProcessRestart)
{
    TempDir dir("disk");
    cache::CacheOptions opts;
    opts.dir = dir.path();
    {
        cache::ArtifactCache store{opts};
        store.put(key_of("famdist", 5, 6), blob_of({10, 20}));
    }
    // A fresh instance simulates a new process on the same dir.
    cache::ArtifactCache store{opts};
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(key_of("famdist", 5, 6), out));
    EXPECT_EQ(out, blob_of({10, 20}));
}

TEST(ArtifactCache, TruncatedDiskEntryIsAMiss)
{
    TempDir dir("trunc");
    cache::CacheOptions opts;
    opts.dir = dir.path();
    {
        cache::ArtifactCache store{opts};
        store.put(key_of("famsolve", 7, 8), blob_of({1, 2, 3, 4}));
    }
    std::filesystem::path file =
        single_entry_file(dir.path(), "famsolve");
    std::filesystem::resize_file(
        file, std::filesystem::file_size(file) / 2);

    cache::ArtifactCache store{opts};
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(store.get(key_of("famsolve", 7, 8), out));
}

TEST(ArtifactCache, BitFlippedDiskEntryIsAMiss)
{
    TempDir dir("flip");
    cache::CacheOptions opts;
    opts.dir = dir.path();
    {
        cache::ArtifactCache store{opts};
        store.put(key_of("typeinf", 9, 10), blob_of({5, 6, 7, 8}));
    }
    std::filesystem::path file =
        single_entry_file(dir.path(), "typeinf");
    // Flip one payload byte near the end (past header + key echo);
    // the checksum must catch it.
    std::fstream f(file, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(-5, std::ios::end);
    char byte = 0;
    f.seekg(f.tellp());
    f.get(byte);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.put(byte);
    f.close();

    cache::ArtifactCache store{opts};
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(store.get(key_of("typeinf", 9, 10), out));
}

TEST(ArtifactCache, StaleSchemaVersionIsAMiss)
{
    TempDir dir("schema");
    cache::CacheOptions opts;
    opts.dir = dir.path();
    {
        cache::ArtifactCache store{opts};
        store.put(key_of("slm", 11, 12), blob_of({1, 2}));
    }
    // The on-disk header is: u32 magic, u32 schema version, ... .
    // Bump the version field, simulating an entry left behind by a
    // future (or past) build.
    std::filesystem::path file = single_entry_file(dir.path(), "slm");
    std::fstream f(file, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(4, std::ios::beg);
    f.put(static_cast<char>(cache::kSchemaVersion + 1));
    f.close();

    cache::ArtifactCache store{opts};
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(store.get(key_of("slm", 11, 12), out));

    // scan_dir keeps the entry (framing is intact) but surfaces the
    // foreign schema version for rockdump --cache-stats to report.
    cache::DirStats stats = cache::scan_dir(dir.path());
    EXPECT_EQ(stats.invalid, 0u);
    ASSERT_EQ(stats.schema_versions.size(), 1u);
    EXPECT_EQ(stats.schema_versions.front(),
              cache::kSchemaVersion + 1);
}

TEST(ArtifactCache, LruEvictionUnderByteBudget)
{
    cache::CacheOptions opts;
    opts.max_bytes = 64; // room for a handful of tiny blobs only
    cache::ArtifactCache store{opts};
    for (int i = 0; i < 32; ++i)
        store.put(key_of("symexec", static_cast<std::uint64_t>(i), 0),
                  blob_of({i, i, i, i}));
    cache::CacheStats stats = store.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries * 16, opts.max_bytes);
    // The most recent insert must still be resident, the first gone.
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(store.get(key_of("symexec", 31, 0), out));
    EXPECT_FALSE(store.get(key_of("symexec", 0, 0), out));
}

TEST(ArtifactCache, ConcurrentSameKeyInsertionIsFirstWinsStable)
{
    cache::ArtifactCache store{cache::CacheOptions{}};
    auto key = key_of("famdist", 42, 42);
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&store, &key, t] {
            for (int i = 0; i < 200; ++i)
                store.put(key, blob_of({t}));
        });
    }
    for (auto& w : workers)
        w.join();
    std::vector<std::uint8_t> first;
    ASSERT_TRUE(store.get(key, first));
    // Whichever writer won, the entry never changes afterwards.
    for (int i = 0; i < 10; ++i) {
        std::vector<std::uint8_t> again;
        ASSERT_TRUE(store.get(key, again));
        EXPECT_EQ(again, first);
    }
    EXPECT_EQ(store.stats().entries, 1u);
}

TEST(ArtifactFingerprints, ConfigKnobsInvalidateThreadsDoNot)
{
    core::RockConfig base;
    core::RockConfig threads = base;
    threads.threads = 8;
    EXPECT_EQ(core::config_fingerprint(base),
              core::config_fingerprint(threads));
    EXPECT_EQ(core::solve_fingerprint(base),
              core::solve_fingerprint(threads));

    core::RockConfig depth = base;
    depth.slm.depth += 1;
    EXPECT_NE(core::config_fingerprint(base),
              core::config_fingerprint(depth));

    core::RockConfig eps = base;
    eps.tie_epsilon *= 2.0;
    EXPECT_NE(core::solve_fingerprint(base),
              core::solve_fingerprint(eps));
}

// ---- end-to-end warm reconstruction ------------------------------------

toyc::CompileResult
compile_corpus(int classes, unsigned seed)
{
    corpus::GeneratorSpec spec;
    spec.num_classes = classes;
    spec.num_trees = 3;
    spec.max_depth = 4;
    spec.scenarios_per_class = 2;
    spec.seed = seed;
    return toyc::compile(corpus::generate_program(spec));
}

TEST(CacheIntegration, WarmRunsAreBitIdenticalAcrossThreadCounts)
{
    toyc::CompileResult compiled = compile_corpus(24, 7);
    const int hw = static_cast<int>(std::max(
        1u, std::thread::hardware_concurrency()));

    core::RockConfig serial;
    serial.threads = 1;
    core::ReconstructionResult uncached =
        core::reconstruct(compiled.image, serial);
    const std::string want = uncached.hierarchy.to_string();
    const auto want_distances = uncached.sorted_distances();

    auto store = std::make_shared<cache::ArtifactCache>(
        cache::CacheOptions{});
    // Cold populate at 1 thread, then warm replays at {1, 2, hw}:
    // the fingerprints exclude thread counts, so every warm run must
    // serve from the same entries and reproduce the serial result.
    core::RockConfig cold = serial;
    cold.cache = store;
    core::ReconstructionResult first =
        core::reconstruct(compiled.image, cold);
    EXPECT_EQ(first.hierarchy.to_string(), want);

    std::uint64_t after_cold_hits = store->stats().hits;
    for (int threads : {1, 2, hw}) {
        core::RockConfig warm;
        warm.threads = threads;
        warm.cache = store;
        core::ReconstructionResult result =
            core::reconstruct(compiled.image, warm);
        EXPECT_EQ(result.hierarchy.to_string(), want)
            << "threads=" << threads;
        EXPECT_EQ(result.sorted_distances(), want_distances)
            << "threads=" << threads;
        EXPECT_EQ(result.ambiguous_families,
                  uncached.ambiguous_families);
        std::uint64_t hits = store->stats().hits;
        EXPECT_GT(hits, after_cold_hits) << "threads=" << threads;
        after_cold_hits = hits;
    }
}

TEST(CacheIntegration, DiskWarmStartInFreshStore)
{
    TempDir dir("warm");
    toyc::CompileResult compiled = compile_corpus(16, 11);

    std::string cold_forest;
    {
        cache::CacheOptions opts;
        opts.dir = dir.path();
        core::RockConfig config;
        config.threads = 1;
        config.cache = std::make_shared<cache::ArtifactCache>(opts);
        cold_forest = core::reconstruct(compiled.image, config)
                          .hierarchy.to_string();
    }
    // New store instance on the same dir: everything replays from
    // disk, bit-identically.
    cache::CacheOptions opts;
    opts.dir = dir.path();
    auto store = std::make_shared<cache::ArtifactCache>(opts);
    core::RockConfig config;
    config.threads = 1;
    config.cache = store;
    core::ReconstructionResult warm =
        core::reconstruct(compiled.image, config);
    EXPECT_EQ(warm.hierarchy.to_string(), cold_forest);
    EXPECT_GT(store->stats().hits, 0u);
}

TEST(CacheIntegration, CorruptedEntriesNeverChangeResults)
{
    toyc::CompileResult compiled = compile_corpus(16, 13);
    auto store = std::make_shared<cache::ArtifactCache>(
        cache::CacheOptions{});
    core::RockConfig config;
    config.threads = 1;
    config.cache = store;
    const std::string want =
        core::reconstruct(compiled.image, config)
            .hierarchy.to_string();

    // Truncate every famsolve payload in place (valid header,
    // garbage body): decoders must reject them and re-solve.
    for (const auto& key : store->keys(core::kFamilySolveKind))
        store->corrupt_for_testing(key, blob_of({0}));
    core::ReconstructionResult again =
        core::reconstruct(compiled.image, config);
    EXPECT_EQ(again.hierarchy.to_string(), want);
}

} // namespace

/**
 * @file
 * Unit tests for the toyc source model, semantic analysis, and
 * compiler.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "bir/image.h"
#include "corpus/examples.h"
#include "support/error.h"
#include "toyc/ast.h"
#include "toyc/compiler.h"
#include "toyc/sema.h"

namespace {

using namespace rock;
using namespace rock::toyc;
using rock::support::FatalError;

/** A <- B <- C chain with one method each. */
Program
chain_program()
{
    Program prog;
    {
        ClassDecl a;
        a.name = "A";
        a.num_fields = 1;
        a.methods.push_back({"fa", false, {}});
        prog.classes.push_back(a);
    }
    {
        ClassDecl b;
        b.name = "B";
        b.parents = {"A"};
        b.num_fields = 2;
        b.methods.push_back({"fb", false, {}});
        prog.classes.push_back(b);
    }
    {
        ClassDecl c;
        c.name = "C";
        c.parents = {"B"};
        c.num_fields = 1;
        // The override body must differ from A::fa's or the two
        // functions legitimately fold together.
        MethodDecl fa_override{"fa", false,
                               {Stmt::write_field("this", 3)}};
        c.methods.push_back(fa_override);
        c.methods.push_back({"fc", false, {}});
        prog.classes.push_back(c);
    }
    UsageFunc use;
    use.name = "use_all";
    use.body.push_back(Stmt::new_object("a", "A"));
    use.body.push_back(Stmt::new_object("c", "C"));
    use.body.push_back(Stmt::virt_call("c", "fc"));
    prog.usages.push_back(use);
    return prog;
}

// ---------------------------------------------------------------------
// Sema: layouts
// ---------------------------------------------------------------------

TEST(Sema, SingleInheritanceVtableLayout)
{
    Program prog = chain_program();
    Sema sema(prog);

    const ClassLayout& a = sema.layout("A");
    ASSERT_EQ(a.branches.size(), 1u);
    ASSERT_EQ(a.branches[0].slots.size(), 1u);
    EXPECT_EQ(a.branches[0].slots[0].method, "fa");
    EXPECT_EQ(a.branches[0].slots[0].impl_class, "A");

    const ClassLayout& c = sema.layout("C");
    ASSERT_EQ(c.branches.size(), 1u);
    ASSERT_EQ(c.branches[0].slots.size(), 3u);
    // Slot order: inherited first, new methods appended.
    EXPECT_EQ(c.branches[0].slots[0].method, "fa");
    EXPECT_EQ(c.branches[0].slots[0].impl_class, "C"); // overridden
    EXPECT_EQ(c.branches[0].slots[1].method, "fb");
    EXPECT_EQ(c.branches[0].slots[1].impl_class, "B"); // inherited
    EXPECT_EQ(c.branches[0].slots[2].method, "fc");
}

TEST(Sema, FieldOffsetsAccumulate)
{
    Program prog = chain_program();
    Sema sema(prog);
    // A: vptr@0, field@4. size 8.
    EXPECT_EQ(sema.layout("A").size, 8u);
    EXPECT_EQ(sema.layout("A").field_offsets,
              (std::vector<std::uint32_t>{4}));
    // B: A subobject (8) + 2 own fields.
    EXPECT_EQ(sema.layout("B").size, 16u);
    EXPECT_EQ(sema.layout("B").field_offsets,
              (std::vector<std::uint32_t>{4, 8, 12}));
    // C: B subobject (16) + 1 own field.
    EXPECT_EQ(sema.layout("C").size, 20u);
    EXPECT_EQ(sema.num_fields("C"), 4u);
}

TEST(Sema, AncestorsNearestFirst)
{
    Program prog = chain_program();
    Sema sema(prog);
    EXPECT_EQ(sema.layout("C").ancestors,
              (std::vector<std::string>{"B", "A"}));
    EXPECT_TRUE(sema.layout("A").ancestors.empty());
}

TEST(Sema, TopoOrderParentsFirst)
{
    Program prog = chain_program();
    Sema sema(prog);
    const auto& order = sema.topo_order();
    auto pos = [&order](const std::string& name) {
        return std::find(order.begin(), order.end(), name) -
               order.begin();
    };
    EXPECT_LT(pos("A"), pos("B"));
    EXPECT_LT(pos("B"), pos("C"));
}

TEST(Sema, MultipleInheritanceBranches)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    a.num_fields = 1;
    a.methods.push_back({"fa", false, {}});
    ClassDecl b;
    b.name = "B";
    b.num_fields = 2;
    b.methods.push_back({"fb", false, {}});
    ClassDecl c;
    c.name = "C";
    c.parents = {"A", "B"};
    c.num_fields = 1;
    c.methods.push_back({"fb", false, {}}); // overrides B's method
    c.methods.push_back({"fc", false, {}});
    prog.classes = {a, b, c};

    Sema sema(prog);
    const ClassLayout& lay = sema.layout("C");
    ASSERT_EQ(lay.branches.size(), 2u);
    EXPECT_EQ(lay.branches[0].offset, 0u);
    EXPECT_EQ(lay.branches[0].base, "A");
    // B subobject starts after A's 8 bytes.
    EXPECT_EQ(lay.branches[1].offset, 8u);
    EXPECT_EQ(lay.branches[1].base, "B");
    // The override lands in the secondary branch.
    EXPECT_EQ(lay.branches[1].slots[0].impl_class, "C");
    // New method extends the primary branch.
    EXPECT_EQ(lay.branches[0].slots.back().method, "fc");
    // Object: [vptrA][fA][vptrB][fB][fB][fC] = 24 bytes.
    EXPECT_EQ(lay.size, 24u);
}

TEST(Sema, PureMethodsMakeClassAbstract)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    a.methods.push_back({"f", true, {}});
    ClassDecl b;
    b.name = "B";
    b.parents = {"A"};
    b.methods.push_back({"f", false, {}});
    prog.classes = {a, b};
    Sema sema(prog);
    EXPECT_TRUE(sema.layout("A").abstract);
    EXPECT_FALSE(sema.layout("B").abstract);
}

// ---------------------------------------------------------------------
// Sema: validation errors
// ---------------------------------------------------------------------

TEST(SemaErrors, UnknownParent)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    a.parents = {"Ghost"};
    prog.classes = {a};
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, InheritanceCycle)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    a.parents = {"B"};
    ClassDecl b;
    b.name = "B";
    b.parents = {"A"};
    prog.classes = {a, b};
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, DuplicateClass)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    prog.classes = {a, a};
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, UndefinedVariable)
{
    Program prog = chain_program();
    UsageFunc bad;
    bad.name = "bad";
    bad.body.push_back(Stmt::virt_call("nobody", "fa"));
    prog.usages.push_back(bad);
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, UnknownMethod)
{
    Program prog = chain_program();
    prog.usages[0].body.push_back(Stmt::virt_call("a", "missing"));
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, FieldOutOfRange)
{
    Program prog = chain_program();
    prog.usages[0].body.push_back(Stmt::read_field("a", 5));
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, CallArityMismatch)
{
    Program prog = chain_program();
    UsageFunc callee;
    callee.name = "callee";
    callee.params.push_back({"p", "A"});
    prog.usages.push_back(callee);
    prog.usages[0].body.push_back(Stmt::call_free("callee", {}));
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, InstantiatingAbstractClass)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    a.methods.push_back({"f", true, {}});
    prog.classes = {a};
    UsageFunc fn;
    fn.name = "u";
    fn.body.push_back(Stmt::new_object("x", "A"));
    prog.usages.push_back(fn);
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, PureMethodWithBody)
{
    Program prog;
    ClassDecl a;
    a.name = "A";
    MethodDecl m;
    m.name = "f";
    m.pure = true;
    m.body.push_back(Stmt::read_field("this", 0));
    a.methods.push_back(m);
    prog.classes = {a};
    EXPECT_THROW(Sema{prog}, FatalError);
}

TEST(SemaErrors, NewObjectInCtorBody)
{
    Program prog = chain_program();
    prog.classes[0].ctor_body.push_back(Stmt::new_object("t", "A"));
    EXPECT_THROW(Sema{prog}, FatalError);
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

TEST(Compiler, SharedImplementationsAcrossVtables)
{
    // Non-overridden methods must appear as the same pointer in the
    // parent's and child's vtables -- the family fingerprint.
    Program prog = chain_program();
    CompileResult out = compile(prog);
    std::uint32_t vt_a = out.debug.class_to_vtable.at("A");
    std::uint32_t vt_b = out.debug.class_to_vtable.at("B");
    std::uint32_t vt_c = out.debug.class_to_vtable.at("C");
    // B inherits A::fa at slot 0.
    EXPECT_EQ(*out.image.read_data_word(vt_a),
              *out.image.read_data_word(vt_b));
    // C overrides fa: its slot 0 differs from A's.
    EXPECT_NE(*out.image.read_data_word(vt_a),
              *out.image.read_data_word(vt_c));
    // C inherits B::fb at slot 1.
    EXPECT_EQ(*out.image.read_data_word(vt_b + 4),
              *out.image.read_data_word(vt_c + 4));
}

TEST(Compiler, StrippedByDefault)
{
    CompileResult out = compile(chain_program());
    EXPECT_TRUE(out.image.symbols.empty());
    EXPECT_FALSE(out.image.has_rtti);
}

TEST(Compiler, DebugAncestorsReflectHierarchy)
{
    CompileResult out = compile(chain_program());
    std::uint32_t vt_a = out.debug.class_to_vtable.at("A");
    std::uint32_t vt_b = out.debug.class_to_vtable.at("B");
    for (const auto& type : out.debug.types) {
        if (type.class_name == "C") {
            ASSERT_EQ(type.ancestors.size(), 2u);
            EXPECT_EQ(type.ancestors[0], vt_b);
            EXPECT_EQ(type.ancestors[1], vt_a);
        }
    }
}

TEST(Compiler, AbstractClassOmittedByDefault)
{
    corpus::CorpusProgram example = corpus::cgrid_program();
    CompileResult out = compile(example.program, example.options);
    EXPECT_EQ(out.debug.class_to_vtable.count("CEdit"), 0u);
    EXPECT_EQ(out.debug.class_to_vtable.count("CDialog"), 0u);
    // Children of the omitted base list no binary ancestors.
    for (const auto& type : out.debug.types) {
        if (type.class_name == "CGridEditorText") {
            EXPECT_TRUE(type.ancestors.empty());
        }
    }
}

TEST(Compiler, AbstractClassKeptWhenRequested)
{
    corpus::CorpusProgram example = corpus::cgrid_program();
    example.options.omit_abstract_classes = false;
    CompileResult out = compile(example.program, example.options);
    ASSERT_EQ(out.debug.class_to_vtable.count("CEdit"), 1u);
    // The abstract vtable contains a purecall slot.
    std::uint32_t vt = out.debug.class_to_vtable.at("CEdit");
    EXPECT_EQ(*out.image.read_data_word(vt), bir::kPurecallStub);
}

TEST(Compiler, ParentCtorCallEmittedAndInlined)
{
    Program prog = chain_program();
    // With cues: B's ctor contains a Call to A's ctor.
    CompileOptions with_cues;
    with_cues.parent_ctor_calls = true;
    CompileResult cued = compile(prog, with_cues);

    CompileOptions no_cues;
    no_cues.parent_ctor_calls = false;
    CompileResult inlined = compile(prog, no_cues);

    // Count Call instructions that target non-stub functions across
    // the whole image: the cued build must have strictly more.
    auto count_calls = [](const bir::BinaryImage& img) {
        int calls = 0;
        for (const auto& fn : img.functions) {
            for (const auto& instr : img.decode_function(fn)) {
                if (instr.op == bir::Op::Call &&
                    instr.imm != bir::kAllocStub &&
                    instr.imm != bir::kPurecallStub) {
                    ++calls;
                }
            }
        }
        return calls;
    };
    EXPECT_GT(count_calls(cued.image), count_calls(inlined.image));
}

TEST(Compiler, MultipleVptrStoresForMI)
{
    corpus::CorpusProgram example =
        corpus::multiple_inheritance_program();
    CompileResult out = compile(example.program, example.options);
    // Model's primary and secondary vtables both exist; the secondary
    // is marked synthetic.
    int synthetic = 0;
    for (const auto& type : out.debug.types) {
        if (type.synthetic) {
            ++synthetic;
            EXPECT_NE(type.class_name.find("::"), std::string::npos);
        }
    }
    EXPECT_EQ(synthetic, 1);
}

TEST(Compiler, FoldingCountsReported)
{
    // Two classes with byte-identical methods fold.
    Program prog;
    for (const char* name : {"X", "Y"}) {
        ClassDecl cls;
        cls.name = name;
        cls.num_fields = 1;
        MethodDecl m;
        m.name = "same";
        m.body.push_back(Stmt::write_field("this", 0));
        cls.methods.push_back(m);
        prog.classes.push_back(cls);
    }
    UsageFunc fn;
    fn.name = "u";
    fn.body.push_back(Stmt::new_object("x", "X"));
    fn.body.push_back(Stmt::new_object("y", "Y"));
    prog.usages.push_back(fn);

    CompileResult folded = compile(prog);
    EXPECT_GE(folded.folded, 1u);

    CompileOptions no_fold;
    no_fold.fold_identical_functions = false;
    CompileResult kept = compile(prog, no_fold);
    EXPECT_EQ(kept.folded, 0u);
    EXPECT_GT(kept.image.functions.size(),
              folded.image.functions.size());
}

TEST(Compiler, RttiMatchesDebugInfo)
{
    Program prog = chain_program();
    CompileOptions opts;
    opts.link.emit_rtti = true;
    CompileResult out = compile(prog, opts);
    ASSERT_TRUE(out.image.has_rtti);
    // Every debug type's vtable carries an RTTI back-pointer to a
    // record that names the same vtable.
    for (const auto& type : out.debug.types) {
        std::uint32_t rec =
            *out.image.read_data_word(type.vtable_addr - 4);
        ASSERT_NE(rec, 0u);
        EXPECT_EQ(*out.image.read_data_word(rec), bir::kRttiMagic);
        EXPECT_EQ(*out.image.read_data_word(rec + 4), type.vtable_addr);
    }
}

} // namespace

/**
 * @file
 * Consistency properties across word-set strategies and the
 * enumeration budget:
 *
 *  - on a small alphabet, the parent ranking induced by DKL over the
 *    observed-union word set agrees with the exhaustive word set
 *    (the strategies estimate the same quantity);
 *  - the enumeration budget degrades gracefully: the optimum is
 *    always present and is the first result.
 */
#include <gtest/gtest.h>

#include "divergence/metrics.h"
#include "divergence/word_set.h"
#include "graph/enumerate.h"
#include "slm/model.h"
#include "support/rng.h"

namespace {

using namespace rock;
using namespace rock::divergence;

class StrategyAgreement
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyAgreement, ObservedUnionMatchesExhaustiveRanking)
{
    support::Rng rng(GetParam());
    const int alphabet = 4;

    // Clearly separated regimes so the ranking is unambiguous:
    // parent over {0,1}, the child adds {2}, the distractor lives
    // on {3}.
    std::vector<int> base{0, static_cast<int>(rng.index(2))};
    std::vector<std::vector<int>> parent_seqs{base, base};
    std::vector<int> child_word = base;
    child_word.push_back(2);
    child_word.push_back(2);
    std::vector<std::vector<int>> child_seqs{base, child_word};
    std::vector<std::vector<int>> other_seqs{
        {3, 3, static_cast<int>(rng.index(2)) == 0 ? 3 : 0},
        {3, 0, 3}};

    slm::ModelConfig config;
    auto parent = slm::train_model(config, alphabet, parent_seqs);
    auto child = slm::train_model(config, alphabet, child_seqs);
    auto other = slm::train_model(config, alphabet, other_seqs);

    auto rank = [&](WordSetStrategy strategy) {
        WordSetConfig wc;
        wc.strategy = strategy;
        wc.exhaustive_len = 4;
        auto w_pc = build_word_set(wc, parent_seqs, child_seqs,
                                   parent.get(), alphabet);
        auto w_oc = build_word_set(wc, other_seqs, child_seqs,
                                   other.get(), alphabet);
        return kl_divergence(*parent, *child, w_pc) <
               kl_divergence(*other, *child, w_oc);
    };

    bool observed = rank(WordSetStrategy::ObservedUnion);
    bool exhaustive = rank(WordSetStrategy::Exhaustive);
    EXPECT_EQ(observed, exhaustive);
    EXPECT_TRUE(exhaustive)
        << "parent should beat the distractor under the exact set";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(EnumerateBudget, OptimumSurvivesTinyBudget)
{
    // A zero-weight near-complete graph: the degenerate landscape.
    support::Rng rng(3);
    graph::Digraph g(12);
    for (int u = 0; u < 12; ++u) {
        for (int v = 0; v < 12; ++v) {
            if (u != v && rng.chance(0.4))
                g.add_edge(u, v, 0.0);
        }
    }
    graph::Arborescence best = graph::min_forest(g);

    graph::EnumerateConfig config;
    config.max_steps = 50; // absurdly small
    auto forests = graph::enumerate_min_forests(g, config);
    ASSERT_FALSE(forests.empty());
    EXPECT_EQ(forests.front().parent, best.parent);
    EXPECT_EQ(forests.front().num_roots, best.num_roots);
}

TEST(EnumerateBudget, LargeBudgetFindsMoreForests)
{
    graph::Digraph g(4);
    for (int u = 0; u < 4; ++u) {
        for (int v = 0; v < 4; ++v) {
            if (u != v)
                g.add_edge(u, v, 1.0);
        }
    }
    graph::EnumerateConfig small;
    small.max_results = 1000;
    small.max_steps = 20;
    graph::EnumerateConfig large;
    large.max_results = 1000;
    auto few = graph::enumerate_min_forests(g, small);
    auto all = graph::enumerate_min_forests(g, large);
    EXPECT_LT(few.size(), all.size());
    EXPECT_EQ(all.size(), 64u);
}

} // namespace

/**
 * @file
 * Unit tests for ground truth extraction and the application
 * distance (paper Sections 6.2-6.3).
 */
#include <gtest/gtest.h>

#include "support/error.h"
#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "eval/application_distance.h"
#include "eval/forest_metrics.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::eval;

// ---------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------

TEST(GroundTruth, SuccessorsFollowParentChains)
{
    GroundTruth gt;
    gt.types = {1, 2, 3, 4};
    gt.parent[2] = 1;
    gt.parent[3] = 2;
    // 4 is a root.
    EXPECT_EQ(gt.successors(1), (std::set<std::uint32_t>{2, 3}));
    EXPECT_EQ(gt.successors(2), (std::set<std::uint32_t>{3}));
    EXPECT_TRUE(gt.successors(3).empty());
    EXPECT_TRUE(gt.successors(4).empty());
}

TEST(GroundTruth, FromDebugSkipsSynthetic)
{
    corpus::CorpusProgram example =
        corpus::multiple_inheritance_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    GroundTruth gt = ground_truth_from_debug(compiled.debug);
    // 4 classes; the secondary Model::Observable vtable is excluded.
    EXPECT_EQ(gt.types.size(), 4u);
    EXPECT_EQ(gt.synthetic.size(), 1u);
}

TEST(GroundTruth, RttiAgreesWithDebug)
{
    // The two independent ground-truth sources must coincide on every
    // benchmark program.
    for (const auto& spec : corpus::table2_benchmarks()) {
        toyc::CompileOptions opts = spec.program.options;
        opts.link.emit_rtti = true;
        toyc::CompileResult compiled =
            toyc::compile(spec.program.program, opts);
        GroundTruth from_debug =
            ground_truth_from_debug(compiled.debug);
        GroundTruth from_rtti = ground_truth_from_rtti(compiled.image);
        EXPECT_EQ(from_debug.types, from_rtti.types) << spec.name;
        EXPECT_EQ(from_debug.parent, from_rtti.parent) << spec.name;
    }
}

TEST(GroundTruth, RttiRequiresRttiImage)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    EXPECT_THROW(ground_truth_from_rtti(compiled.image),
                 support::FatalError);
}

// ---------------------------------------------------------------------
// Application distance, hand-computed
// ---------------------------------------------------------------------

/** GT: 1 <- 2 <- 3, plus root 4. */
GroundTruth
chain_gt()
{
    GroundTruth gt;
    gt.types = {1, 2, 3, 4};
    gt.parent[2] = 1;
    gt.parent[3] = 2;
    return gt;
}

TEST(AppDistance, PerfectHierarchyScoresZero)
{
    core::Hierarchy h({1, 2, 3, 4});
    h.set_parent(1, 0);
    h.set_parent(2, 1);
    AppDistance d = application_distance(h, chain_gt());
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(d.avg_added, 0.0);
    EXPECT_EQ(d.num_types, 4);
}

TEST(AppDistance, MissingCountsLostSuccessors)
{
    // Reconstruction broke the 2<-3 edge: type 3 is a root.
    core::Hierarchy h({1, 2, 3, 4});
    h.set_parent(1, 0);
    AppDistance d = application_distance(h, chain_gt());
    // successors_GT(1) = {2,3} vs {2}: missing 1.
    // successors_GT(2) = {3} vs {}: missing 1. Total 2/4.
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.5);
    EXPECT_DOUBLE_EQ(d.avg_added, 0.0);
    EXPECT_EQ(d.types_with_missing, 2);
}

TEST(AppDistance, AddedCountsForeignSuccessors)
{
    // Reconstruction hung root 4 under 3.
    core::Hierarchy h({1, 2, 3, 4});
    h.set_parent(1, 0);
    h.set_parent(2, 1);
    h.set_parent(3, 2);
    AppDistance d = application_distance(h, chain_gt());
    // 4 now appears under 3, 2 and 1: added 3 over 4 types.
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(d.avg_added, 0.75);
    EXPECT_EQ(d.types_with_added, 3);
}

TEST(AppDistance, SyntheticTypesIgnored)
{
    // A synthetic intermediate in the reconstruction must not count.
    GroundTruth gt;
    gt.types = {1, 3};
    gt.parent[3] = 1;
    gt.synthetic = {2};
    core::Hierarchy h({1, 2, 3});
    h.set_parent(1, 0); // synthetic 2 under 1
    h.set_parent(2, 1); // 3 under synthetic 2
    AppDistance d = application_distance(h, gt);
    // successors(1) = {2,3} restricted to GT = {3}: exact.
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(d.avg_added, 0.0);
}

TEST(AppDistance, EmptyGroundTruth)
{
    core::Hierarchy h{std::vector<std::uint32_t>{}};
    AppDistance d = application_distance(h, GroundTruth{});
    EXPECT_EQ(d.num_types, 0);
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0);
}

// ---------------------------------------------------------------------
// Worst-case over alternatives
// ---------------------------------------------------------------------

TEST(AppDistance, WorstCasePicksLeastPreciseAlternative)
{
    corpus::CorpusProgram example = corpus::echoparams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    core::RockConfig config;
    // A huge tie tolerance makes many co-optimal forests survive, so
    // worst >= best.
    config.tie_epsilon = 100.0;
    core::ReconstructionResult result =
        core::reconstruct(compiled.image, config);
    GroundTruth gt = ground_truth_from_debug(compiled.debug);
    AppDistance best =
        application_distance(result.hierarchy, gt);
    AppDistance worst = application_distance_worst(result, gt);
    EXPECT_GE(worst.avg_missing + worst.avg_added,
              best.avg_missing + best.avg_added);
    EXPECT_GT(worst.avg_added, 0.0);
}

// ---------------------------------------------------------------------
// Forest metrics
// ---------------------------------------------------------------------

TEST(ForestMetrics, PerfectReconstruction)
{
    core::Hierarchy h({1, 2, 3, 4});
    h.set_parent(1, 0);
    h.set_parent(2, 1);
    ForestMetrics m = forest_metrics(h, chain_gt());
    EXPECT_DOUBLE_EQ(m.parent_accuracy, 1.0);
    EXPECT_DOUBLE_EQ(m.edge_precision, 1.0);
    EXPECT_DOUBLE_EQ(m.edge_recall, 1.0);
}

TEST(ForestMetrics, WrongParentPenalized)
{
    core::Hierarchy h({1, 2, 3, 4});
    h.set_parent(1, 0);
    h.set_parent(2, 0); // wrong: GT says 3's parent is 2
    ForestMetrics m = forest_metrics(h, chain_gt());
    EXPECT_DOUBLE_EQ(m.parent_accuracy, 0.75);
    EXPECT_DOUBLE_EQ(m.edge_precision, 0.5);
    EXPECT_DOUBLE_EQ(m.edge_recall, 0.5);
}

TEST(ForestMetrics, SkipsSyntheticIntermediates)
{
    GroundTruth gt;
    gt.types = {1, 3};
    gt.parent[3] = 1;
    gt.synthetic = {2};
    core::Hierarchy h({1, 2, 3});
    h.set_parent(1, 0);
    h.set_parent(2, 1);
    ForestMetrics m = forest_metrics(h, gt);
    // 3's effective parent is 1 after skipping synthetic 2.
    EXPECT_DOUBLE_EQ(m.parent_accuracy, 1.0);
}

} // namespace

/**
 * @file
 * Unit and property tests for word sets and divergence metrics.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "support/error.h"
#include "divergence/metrics.h"
#include "divergence/word_set.h"
#include "slm/model.h"
#include "support/rng.h"

namespace {

using namespace rock::divergence;
using namespace rock::slm;

std::unique_ptr<LanguageModel>
model_from(const std::vector<std::vector<int>>& seqs, int alphabet = 4)
{
    ModelConfig config;
    return train_model(config, alphabet, seqs);
}

// ---------------------------------------------------------------------
// Word sets
// ---------------------------------------------------------------------

TEST(WordSet, ObservedUnionDeduplicates)
{
    WordSetConfig config;
    auto words = build_word_set(config, {{0, 1}, {0, 1}},
                                {{0, 1}, {2}}, nullptr, 4);
    EXPECT_EQ(words.size(), 2u);
}

TEST(WordSet, ObservedUnionSkipsEmptySequences)
{
    WordSetConfig config;
    auto words = build_word_set(config, {{}}, {{1}}, nullptr, 4);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], (std::vector<int>{1}));
}

TEST(WordSet, ExhaustiveCountsMatchPowerSum)
{
    WordSetConfig config;
    config.strategy = WordSetStrategy::Exhaustive;
    config.exhaustive_len = 3;
    auto words = build_word_set(config, {}, {}, nullptr, 3);
    // 3 + 9 + 27 words.
    EXPECT_EQ(words.size(), 39u);
}

TEST(WordSet, SampledIsDeterministicPerSeed)
{
    auto model = model_from({{0, 1, 2}, {0, 1, 3}});
    WordSetConfig config;
    config.strategy = WordSetStrategy::Sampled;
    config.sample_count = 32;
    config.sample_len = 4;
    auto a = build_word_set(config, {}, {}, model.get(), 4);
    auto b = build_word_set(config, {}, {}, model.get(), 4);
    EXPECT_EQ(a, b);
    config.seed = 99;
    auto c = build_word_set(config, {}, {}, model.get(), 4);
    EXPECT_NE(a, c);
}

TEST(WordSet, SampledFollowsModelBias)
{
    // A model trained overwhelmingly on symbol 0 should emit mostly 0.
    auto model = model_from({{0, 0, 0, 0, 0, 0, 0}}, 4);
    rock::support::Rng rng(5);
    int zeros = 0;
    int total = 0;
    for (int i = 0; i < 50; ++i) {
        auto word = sample_word(*model, 5, rng);
        for (int s : word) {
            zeros += (s == 0);
            ++total;
        }
    }
    EXPECT_GT(zeros, total / 2);
}

// ---------------------------------------------------------------------
// Divergences
// ---------------------------------------------------------------------

TEST(Divergence, KlIsZeroForIdenticalModels)
{
    auto a = model_from({{0, 1, 2}, {0, 1, 3}});
    auto b = model_from({{0, 1, 2}, {0, 1, 3}});
    WordSet words{{0, 1, 2}, {0, 1, 3}, {2, 2}};
    EXPECT_NEAR(kl_divergence(*a, *b, words), 0.0, 1e-12);
}

TEST(Divergence, KlIsNonNegative)
{
    rock::support::Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::vector<int>> sa, sb;
        for (int i = 0; i < 5; ++i) {
            std::vector<int> w;
            for (std::size_t k = 0; k < 1 + rng.index(6); ++k)
                w.push_back(static_cast<int>(rng.index(4)));
            sa.push_back(w);
            std::vector<int> v;
            for (std::size_t k = 0; k < 1 + rng.index(6); ++k)
                v.push_back(static_cast<int>(rng.index(4)));
            sb.push_back(v);
        }
        auto a = model_from(sa);
        auto b = model_from(sb);
        WordSetConfig config;
        auto words = build_word_set(config, sa, sb, nullptr, 4);
        EXPECT_GE(kl_divergence(*a, *b, words), 0.0);
    }
}

TEST(Divergence, KlIsAsymmetric)
{
    // A's behaviors are contained in B's (B = A + extras): the
    // containment direction must be cheaper, mirroring the
    // parent-to-child reading of the paper.
    std::vector<std::vector<int>> parent{{0, 1}, {0, 1}};
    std::vector<std::vector<int>> child{{0, 1}, {0, 1, 2, 3},
                                        {2, 3, 2}};
    auto a = model_from(parent);
    auto b = model_from(child);
    WordSetConfig config;
    auto words = build_word_set(config, parent, child, nullptr, 4);
    double forward = kl_divergence(*a, *b, words); // parent || child
    double backward = kl_divergence(*b, *a, words);
    EXPECT_LT(forward, backward);
}

TEST(Divergence, JsIsSymmetricAndBounded)
{
    auto a = model_from({{0, 0, 0}});
    auto b = model_from({{3, 3, 3}});
    WordSet words{{0, 0, 0}, {3, 3, 3}, {1, 2}};
    double ab = js_divergence(*a, *b, words);
    double ba = js_divergence(*b, *a, words);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, std::log(2.0) + 1e-12);
    EXPECT_NEAR(js_distance(*a, *b, words), std::sqrt(ab), 1e-12);
}

TEST(Divergence, WordDistributionNormalizes)
{
    auto a = model_from({{0, 1, 2}});
    WordSet words{{0}, {1}, {0, 1}, {2, 2, 2}};
    auto dist = word_distribution(*a, words);
    double total = 0.0;
    for (double p : dist) {
        EXPECT_GT(p, 0.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Divergence, EmptyWordSetIsFatal)
{
    auto a = model_from({{0}});
    EXPECT_THROW(word_distribution(*a, {}),
                 rock::support::FatalError);
}

TEST(Divergence, KlBetweenHandValues)
{
    std::vector<double> p{0.5, 0.5};
    std::vector<double> q{0.9, 0.1};
    double expected = 0.5 * std::log(0.5 / 0.9) +
                      0.5 * std::log(0.5 / 0.1);
    EXPECT_NEAR(kl_between(p, q), expected, 1e-12);
    EXPECT_NEAR(kl_between(p, p), 0.0, 1e-12);
}

TEST(Metrics, NamesRoundTrip)
{
    for (MetricKind kind :
         {MetricKind::KL, MetricKind::KLReversed,
          MetricKind::JSDivergence, MetricKind::JSDistance}) {
        EXPECT_EQ(metric_from_name(metric_name(kind)), kind);
    }
    EXPECT_THROW(metric_from_name("nope"), rock::support::FatalError);
}

TEST(Metrics, PairDistanceDispatch)
{
    auto a = model_from({{0, 1}});
    auto b = model_from({{0, 1}, {2, 3}});
    WordSet words{{0, 1}, {2, 3}};
    EXPECT_NEAR(pair_distance(MetricKind::KL, *a, *b, words),
                kl_divergence(*a, *b, words), 1e-12);
    EXPECT_NEAR(pair_distance(MetricKind::KLReversed, *a, *b, words),
                kl_divergence(*b, *a, words), 1e-12);
    EXPECT_NEAR(pair_distance(MetricKind::JSDivergence, *a, *b, words),
                js_divergence(*a, *b, words), 1e-12);
    EXPECT_NEAR(pair_distance(MetricKind::JSDistance, *a, *b, words),
                js_distance(*a, *b, words), 1e-12);
}

/**
 * Property sweep: for synthetic parent/child/unrelated triples, the
 * paper's Hypothesis 4.1 must hold under the default metric --
 * the true parent is closer than an unrelated type.
 */
class ContainmentSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ContainmentSweep, ParentCloserThanUnrelated)
{
    rock::support::Rng rng(GetParam());
    const int alphabet = 6;
    // Parent behavior: a random base word used repeatedly.
    std::vector<int> base;
    for (int i = 0; i < 4; ++i)
        base.push_back(static_cast<int>(rng.index(3)));
    std::vector<std::vector<int>> parent_seqs{base, base};
    // Child behavior: base + suffix over other symbols.
    std::vector<int> child_word = base;
    for (int i = 0; i < 3; ++i)
        child_word.push_back(3 + static_cast<int>(rng.index(3)));
    std::vector<std::vector<int>> child_seqs{base, child_word,
                                             child_word};
    // Unrelated: scrambled symbols.
    std::vector<std::vector<int>> other_seqs;
    for (int i = 0; i < 3; ++i) {
        std::vector<int> w;
        for (int k = 0; k < 5; ++k)
            w.push_back(static_cast<int>(rng.index(alphabet)));
        other_seqs.push_back(w);
    }

    auto parent = model_from(parent_seqs, alphabet);
    auto child = model_from(child_seqs, alphabet);
    auto other = model_from(other_seqs, alphabet);

    WordSetConfig config;
    auto w_pc =
        build_word_set(config, parent_seqs, child_seqs, nullptr,
                       alphabet);
    auto w_oc = build_word_set(config, other_seqs, child_seqs, nullptr,
                               alphabet);
    double d_parent = kl_divergence(*parent, *child, w_pc);
    double d_other = kl_divergence(*other, *child, w_oc);
    EXPECT_LT(d_parent, d_other);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace

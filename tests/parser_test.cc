/**
 * @file
 * Tests for the toyc textual front-end: parsing, error reporting,
 * and the print/parse round-trip property.
 */
#include <gtest/gtest.h>

#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "support/error.h"
#include "toyc/compiler.h"
#include "toyc/parser.h"
#include "toyc/sema.h"

namespace {

using namespace rock;
using namespace rock::toyc;
using rock::support::FatalError;

TEST(Parser, MinimalClass)
{
    Program prog = parse_program("class A { fields 2; virtual f; }");
    ASSERT_EQ(prog.classes.size(), 1u);
    EXPECT_EQ(prog.classes[0].name, "A");
    EXPECT_EQ(prog.classes[0].num_fields, 2);
    ASSERT_EQ(prog.classes[0].methods.size(), 1u);
    EXPECT_EQ(prog.classes[0].methods[0].name, "f");
    EXPECT_FALSE(prog.classes[0].methods[0].pure);
}

TEST(Parser, InheritanceLists)
{
    Program prog = parse_program(
        "class A { virtual f; }\n"
        "class B { virtual g; }\n"
        "class C : A, B { virtual h; }");
    ASSERT_EQ(prog.classes.size(), 3u);
    EXPECT_EQ(prog.classes[2].parents,
              (std::vector<std::string>{"A", "B"}));
}

TEST(Parser, PureVirtualAndBodies)
{
    Program prog = parse_program(
        "class A {\n"
        "  fields 1;\n"
        "  pure virtual f;\n"
        "  virtual g { write this.0; read this.0; }\n"
        "  ctor { write this.0; }\n"
        "  dtor { read this.0; }\n"
        "}");
    const ClassDecl& cls = prog.classes[0];
    EXPECT_TRUE(cls.methods[0].pure);
    ASSERT_EQ(cls.methods[1].body.size(), 2u);
    EXPECT_EQ(cls.methods[1].body[0].kind, StmtKind::WriteField);
    EXPECT_EQ(cls.methods[1].body[1].kind, StmtKind::ReadField);
    ASSERT_EQ(cls.ctor_body.size(), 1u);
    ASSERT_EQ(cls.dtor_body.size(), 1u);
}

TEST(Parser, UsageFunctionsAndStatements)
{
    Program prog = parse_program(
        "class A { fields 1; virtual f; }\n"
        "fn helper(A x) { x.f(); }\n"
        "fn main() {\n"
        "  new A a;\n"
        "  a.f();\n"
        "  read a.0;\n"
        "  write a.0;\n"
        "  helper(a);\n"
        "  if { a.f(); } else { read a.0; }\n"
        "  loop { a.f(); }\n"
        "  delete a;\n"
        "  return a;\n"
        "}");
    ASSERT_EQ(prog.usages.size(), 2u);
    const UsageFunc& main_fn = prog.usages[1];
    ASSERT_EQ(main_fn.body.size(), 9u);
    EXPECT_EQ(main_fn.body[0].kind, StmtKind::NewObject);
    EXPECT_EQ(main_fn.body[1].kind, StmtKind::VirtCall);
    EXPECT_EQ(main_fn.body[2].kind, StmtKind::ReadField);
    EXPECT_EQ(main_fn.body[3].kind, StmtKind::WriteField);
    EXPECT_EQ(main_fn.body[4].kind, StmtKind::CallFree);
    EXPECT_EQ(main_fn.body[4].args,
              (std::vector<std::string>{"a"}));
    EXPECT_EQ(main_fn.body[5].kind, StmtKind::Branch);
    EXPECT_EQ(main_fn.body[5].then_body.size(), 1u);
    EXPECT_EQ(main_fn.body[5].else_body.size(), 1u);
    EXPECT_EQ(main_fn.body[6].kind, StmtKind::Loop);
    EXPECT_EQ(main_fn.body[7].kind, StmtKind::DeleteObject);
    EXPECT_EQ(main_fn.body[8].kind, StmtKind::ReturnObject);
    // Parameters carry their class.
    EXPECT_EQ(prog.usages[0].params[0].class_name, "A");
    EXPECT_EQ(prog.usages[0].params[0].var, "x");
}

TEST(Parser, CommentsAndWhitespace)
{
    Program prog = parse_program(
        "// header comment\n"
        "class A { // trailing\n"
        "  virtual f; // method\n"
        "}\n");
    ASSERT_EQ(prog.classes.size(), 1u);
    EXPECT_EQ(prog.classes[0].methods[0].name, "f");
}

TEST(ParserErrors, ReportLineAndColumn)
{
    try {
        parse_program("class A {\n  virtual ;\n}");
        FAIL() << "expected parse error";
    } catch (const FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("toyc:2:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("method name"), std::string::npos) << msg;
    }
}

TEST(ParserErrors, RejectsGarbage)
{
    EXPECT_THROW(parse_program("banana"), FatalError);
    EXPECT_THROW(parse_program("class"), FatalError);
    EXPECT_THROW(parse_program("class A {"), FatalError);
    EXPECT_THROW(parse_program("class A { fields x; }"), FatalError);
    EXPECT_THROW(parse_program("class A { pure virtual f {} }"),
                 FatalError);
    EXPECT_THROW(parse_program("fn f( { }"), FatalError);
    EXPECT_THROW(parse_program("class A { virtual f; } @"),
                 FatalError);
}

TEST(Parser, ParsedProgramCompiles)
{
    Program prog = parse_program(
        "class Stream { fields 1; virtual send; }\n"
        "class Confirmable : Stream { fields 1; virtual confirm; }\n"
        "fn use1() { new Stream s; s.send(); s.send(); }\n"
        "fn use2() { new Confirmable c; c.send(); c.confirm(); }\n");
    CompileResult out = compile(prog);
    EXPECT_EQ(out.debug.types.size(), 2u);
}

TEST(Printer, RoundTripsExamplePrograms)
{
    // Print -> parse must reproduce every bundled program exactly
    // (structurally).
    auto same_stmts = [](auto&& self, const std::vector<Stmt>& a,
                         const std::vector<Stmt>& b) -> bool {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].kind != b[i].kind || a[i].var != b[i].var ||
                a[i].class_name != b[i].class_name ||
                a[i].method != b[i].method ||
                a[i].field != b[i].field ||
                a[i].callee != b[i].callee ||
                a[i].args != b[i].args ||
                !self(self, a[i].then_body, b[i].then_body) ||
                !self(self, a[i].else_body, b[i].else_body)) {
                return false;
            }
        }
        return true;
    };

    std::vector<corpus::CorpusProgram> programs{
        corpus::streams_program(), corpus::datasources_program(),
        corpus::echoparams_program(), corpus::cgrid_program(),
        corpus::multiple_inheritance_program()};
    for (const auto& spec : corpus::table2_benchmarks())
        programs.push_back(spec.program);

    for (const auto& program : programs) {
        const Program& original = program.program;
        Program reparsed =
            parse_program(to_source(original), original.name);
        ASSERT_EQ(reparsed.classes.size(), original.classes.size())
            << program.name;
        for (std::size_t c = 0; c < original.classes.size(); ++c) {
            const auto& oc = original.classes[c];
            const auto& rc = reparsed.classes[c];
            EXPECT_EQ(oc.name, rc.name);
            EXPECT_EQ(oc.parents, rc.parents);
            EXPECT_EQ(oc.num_fields, rc.num_fields);
            ASSERT_EQ(oc.methods.size(), rc.methods.size())
                << program.name << "::" << oc.name;
            for (std::size_t m = 0; m < oc.methods.size(); ++m) {
                EXPECT_EQ(oc.methods[m].name, rc.methods[m].name);
                EXPECT_EQ(oc.methods[m].pure, rc.methods[m].pure);
                EXPECT_TRUE(same_stmts(same_stmts,
                                       oc.methods[m].body,
                                       rc.methods[m].body))
                    << program.name << "::" << oc.name
                    << "::" << oc.methods[m].name;
            }
            EXPECT_TRUE(
                same_stmts(same_stmts, oc.ctor_body, rc.ctor_body));
            EXPECT_TRUE(
                same_stmts(same_stmts, oc.dtor_body, rc.dtor_body));
        }
        ASSERT_EQ(reparsed.usages.size(), original.usages.size());
        for (std::size_t u = 0; u < original.usages.size(); ++u) {
            EXPECT_EQ(original.usages[u].name,
                      reparsed.usages[u].name);
            EXPECT_TRUE(same_stmts(same_stmts,
                                   original.usages[u].body,
                                   reparsed.usages[u].body))
                << program.name << "::" << original.usages[u].name;
        }
    }
}

TEST(Printer, OutputIsHumanReadable)
{
    corpus::CorpusProgram example = corpus::streams_program();
    std::string source = to_source(example.program);
    EXPECT_NE(source.find("class Stream"), std::string::npos);
    EXPECT_NE(source.find("class ConfirmableStream : Stream"),
              std::string::npos);
    EXPECT_NE(source.find("fn useStream()"), std::string::npos);
    EXPECT_NE(source.find("obj.send();"), std::string::npos);
}

} // namespace

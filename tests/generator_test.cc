/**
 * @file
 * Tests for the random program generator.
 */
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "toyc/compiler.h"
#include "toyc/sema.h"

namespace {

using namespace rock;
using corpus::GeneratorSpec;

TEST(Generator, DeterministicPerSeed)
{
    GeneratorSpec spec;
    spec.seed = 123;
    toyc::Program a = corpus::generate_program(spec);
    toyc::Program b = corpus::generate_program(spec);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
        EXPECT_EQ(a.classes[i].name, b.classes[i].name);
        EXPECT_EQ(a.classes[i].parents, b.classes[i].parents);
        EXPECT_EQ(a.classes[i].methods.size(),
                  b.classes[i].methods.size());
    }
    EXPECT_EQ(a.usages.size(), b.usages.size());
}

TEST(Generator, DifferentSeedsDiffer)
{
    GeneratorSpec spec;
    spec.seed = 1;
    toyc::Program a = corpus::generate_program(spec);
    spec.seed = 2;
    toyc::Program b = corpus::generate_program(spec);
    bool different = a.classes.size() != b.classes.size();
    for (std::size_t i = 0;
         !different && i < std::min(a.classes.size(), b.classes.size());
         ++i) {
        different = a.classes[i].parents != b.classes[i].parents ||
                    a.classes[i].methods.size() !=
                        b.classes[i].methods.size();
    }
    EXPECT_TRUE(different);
}

TEST(Generator, HonorsClassAndTreeCounts)
{
    GeneratorSpec spec;
    spec.num_classes = 17;
    spec.num_trees = 3;
    spec.seed = 5;
    toyc::Program prog = corpus::generate_program(spec);
    EXPECT_EQ(prog.classes.size(), 17u);
    int roots = 0;
    for (const auto& cls : prog.classes) {
        if (cls.parents.empty())
            ++roots;
    }
    EXPECT_EQ(roots, 3);
}

class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, GeneratedProgramsAreValidAndCompile)
{
    GeneratorSpec spec;
    spec.seed = GetParam();
    spec.num_classes = 8 + static_cast<int>(GetParam() % 10);
    spec.fold_noise_pairs = static_cast<int>(GetParam() % 3);
    toyc::Program prog = corpus::generate_program(spec);
    // Sema validates; compilation must produce a non-trivial image.
    toyc::CompileResult out = toyc::compile(prog);
    EXPECT_GT(out.image.functions.size(), prog.classes.size());
    EXPECT_FALSE(out.debug.types.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Generator, MultipleInheritanceKnob)
{
    GeneratorSpec spec;
    spec.seed = 9;
    spec.num_classes = 20;
    spec.num_trees = 3;
    spec.mi_prob = 0.5;
    toyc::Program prog = corpus::generate_program(spec);
    int mi_classes = 0;
    for (const auto& cls : prog.classes) {
        if (cls.parents.size() > 1)
            ++mi_classes;
    }
    EXPECT_GT(mi_classes, 0);
    // Still valid and compilable; secondary vtables marked synthetic.
    toyc::CompileResult out = toyc::compile(prog);
    int synthetic = 0;
    for (const auto& type : out.debug.types)
        synthetic += type.synthetic;
    EXPECT_GE(synthetic, mi_classes);
}

class MiSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiSweep, MiProgramsSurviveThePipeline)
{
    GeneratorSpec spec;
    spec.seed = GetParam();
    spec.num_classes = 12;
    spec.num_trees = 2;
    spec.mi_prob = 0.4;
    toyc::Program prog = corpus::generate_program(spec);
    toyc::CompileResult out = toyc::compile(prog);
    EXPECT_FALSE(out.debug.types.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiSweep,
                         ::testing::Range<std::uint64_t>(50, 60));

} // namespace

// The rockd serving layer: daemon lifecycle, bit-identity of served
// responses against direct reconstruction, concurrent duplicate-heavy
// clients, deterministic rejection of malformed frames, admission
// timeouts, and the graceful-drain protocol. Runs the real daemon on
// a real unix socket -- only the process boundary of tools/rockd.cc
// is elided.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bir/serialize.h"
#include "corpus/generator.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/error.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using serve::protocol::Code;

std::string
test_socket(const std::string& tag)
{
    return "/tmp/rock_serve_test_" + std::to_string(::getpid()) +
           "_" + tag + ".sock";
}

std::vector<std::uint8_t>
corpus_image_bytes(int classes, unsigned seed,
                   bir::BinaryImage* image_out = nullptr)
{
    corpus::GeneratorSpec spec;
    spec.num_classes = classes;
    spec.num_trees = 3;
    spec.max_depth = 4;
    spec.scenarios_per_class = 2;
    spec.seed = seed;
    toyc::CompileResult compiled =
        toyc::compile(corpus::generate_program(spec));
    if (image_out)
        *image_out = compiled.image;
    return bir::save_image(compiled.image);
}

serve::ServerOptions
base_options(const std::string& tag)
{
    serve::ServerOptions options;
    options.socket_path = test_socket(tag);
    options.threads = 2;
    options.batch_window_ms = 5;
    return options;
}

std::string
payload_text(const serve::protocol::Response& response)
{
    return std::string(response.payload.begin(),
                       response.payload.end());
}

/** Raw client socket for hand-crafted (malformed) frames. */
int
raw_connect(const std::string& path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)));
    return fd;
}

/** Read one response frame off a raw socket; fails the test on a
 *  wire or header error. */
serve::protocol::Response
read_response(int fd)
{
    serve::protocol::Frame frame;
    EXPECT_EQ(serve::protocol::WireStatus::Ok,
              serve::protocol::read_frame(fd, &frame));
    serve::protocol::Response response;
    EXPECT_TRUE(
        serve::protocol::parse_response_header(frame.header,
                                               &response));
    response.payload = std::move(frame.payload);
    return response;
}

TEST(ServeLifecycle, StartStatusDrainShutdown)
{
    serve::Server server(base_options("lifecycle"));
    server.start();
    EXPECT_FALSE(server.done());

    serve::Client client(server.options().socket_path);
    serve::protocol::Response status = client.status();
    ASSERT_EQ(Code::Ok, status.code);
    EXPECT_NE(payload_text(status).find("\"draining\":false"),
              std::string::npos);

    server.request_shutdown();
    server.wait();
    EXPECT_TRUE(server.done());
    // The socket is gone: new connections must fail, not hang.
    EXPECT_THROW(serve::Client(server.options().socket_path).status(),
                 support::FatalError);
}

TEST(ServeLifecycle, ClientShutdownOpDrains)
{
    serve::Server server(base_options("oplifecycle"));
    server.start();
    serve::Client client(server.options().socket_path);
    EXPECT_EQ(Code::Ok, client.shutdown_daemon().code);
    server.wait();
    EXPECT_TRUE(server.done());
}

TEST(ServeSubmit, BitIdenticalToDirectReconstructionAndCacheWarm)
{
    bir::BinaryImage image;
    std::vector<std::uint8_t> bytes =
        corpus_image_bytes(24, 7, &image);

    serve::ServerOptions options = base_options("identity");
    serve::Server server(options);
    server.start();
    std::string expected =
        serve::submit_response_text(image, server.options().rock);

    serve::Client client(server.options().socket_path);
    serve::protocol::Response first = client.submit(bytes);
    ASSERT_EQ(Code::Ok, first.code);
    EXPECT_EQ(expected, payload_text(first));

    // A resubmission is served warm (artifact hits) yet stays
    // byte-identical -- the serving-layer determinism contract.
    serve::protocol::Response again = client.submit(bytes);
    ASSERT_EQ(Code::Ok, again.code);
    EXPECT_EQ(payload_text(first), payload_text(again));
    EXPECT_GT(server.store()->stats().hits, 0u);

    server.request_shutdown();
    server.wait();
}

TEST(ServeSubmit, ConcurrentClientsInterleavedDuplicates)
{
    bir::BinaryImage image_a, image_b;
    std::vector<std::uint8_t> bytes_a =
        corpus_image_bytes(20, 3, &image_a);
    std::vector<std::uint8_t> bytes_b =
        corpus_image_bytes(20, 4, &image_b);

    serve::ServerOptions options = base_options("concurrent");
    options.batch_window_ms = 20; // encourage mixed waves
    serve::Server server(options);
    server.start();
    std::string expected_a =
        serve::submit_response_text(image_a, server.options().rock);
    std::string expected_b =
        serve::submit_response_text(image_b, server.options().rock);
    ASSERT_NE(expected_a, expected_b);

    constexpr int kClients = 4;
    constexpr int kRounds = 3;
    std::vector<int> mismatches(kClients, 0);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            serve::Client client(server.options().socket_path);
            for (int r = 0; r < kRounds; ++r) {
                bool use_a = (c + r) % 2 == 0;
                serve::protocol::Response response = client.submit(
                    use_a ? bytes_a : bytes_b);
                if (response.code != Code::Ok ||
                    payload_text(response) !=
                        (use_a ? expected_a : expected_b))
                    ++mismatches[static_cast<std::size_t>(c)];
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(0, mismatches[static_cast<std::size_t>(c)])
            << "client " << c;

    server.request_shutdown();
    server.wait();
}

TEST(ServeReject, MalformedFramesGetDeterministicCodes)
{
    serve::ServerOptions options = base_options("reject");
    options.limits.max_header = 1024;
    options.limits.max_payload = 4096;
    serve::Server server(options);
    server.start();
    const std::string& path = server.options().socket_path;

    { // Wrong magic: rejected, connection closed.
        int fd = raw_connect(path);
        std::uint8_t prefix[16] = {'X', 'X', 'X', 'X'};
        ASSERT_EQ(static_cast<ssize_t>(sizeof(prefix)),
                  ::send(fd, prefix, sizeof(prefix), MSG_NOSIGNAL));
        EXPECT_EQ(Code::BadMagic, read_response(fd).code);
        ::close(fd);
    }
    { // Oversized header length: rejected from the prefix alone.
        std::string huge(2048, 'h');
        int fd = raw_connect(path);
        serve::protocol::write_frame(fd, huge, nullptr, 0);
        EXPECT_EQ(Code::HeaderOversized, read_response(fd).code);
        ::close(fd);
    }
    { // Oversized payload length: likewise, body never sent.
        int fd = raw_connect(path);
        std::uint8_t prefix[16] = {};
        std::memcpy(prefix, "RKD1", 4);
        prefix[8] = 0xff; // payload_len = huge
        prefix[15] = 0x7f;
        ASSERT_EQ(static_cast<ssize_t>(sizeof(prefix)),
                  ::send(fd, prefix, sizeof(prefix), MSG_NOSIGNAL));
        EXPECT_EQ(Code::PayloadOversized, read_response(fd).code);
        ::close(fd);
    }
    { // Truncated frame: half a prefix, then half-close.
        int fd = raw_connect(path);
        ASSERT_EQ(4, ::send(fd, "RKD1", 4, MSG_NOSIGNAL));
        ::shutdown(fd, SHUT_WR);
        EXPECT_EQ(Code::Truncated, read_response(fd).code);
        ::close(fd);
    }
    { // Unparseable header JSON: bad-header, connection survives.
        int fd = raw_connect(path);
        serve::protocol::write_frame(fd, "not json", nullptr, 0);
        EXPECT_EQ(Code::BadHeader, read_response(fd).code);
        serve::protocol::write_frame(
            fd, serve::protocol::request_header(9, "status"),
            nullptr, 0);
        serve::protocol::Response ok = read_response(fd);
        EXPECT_EQ(Code::Ok, ok.code);
        EXPECT_EQ(9, ok.id);
        ::close(fd);
    }
    { // Unknown op.
        serve::Client client(path);
        EXPECT_EQ(Code::BadOp, client.call("transmogrify").code);
    }
    { // Garbage payload bytes on a well-formed submit.
        serve::Client client(path);
        std::vector<std::uint8_t> garbage = {1, 2, 3, 4};
        EXPECT_EQ(Code::BadImage, client.submit(garbage).code);
    }

    server.request_shutdown();
    server.wait();
}

TEST(ServeReject, AdmissionTimeoutAnswersTimeout)
{
    serve::ServerOptions options = base_options("timeout");
    options.request_timeout_ms = 1;
    options.batch_window_ms = 100; // guarantee the queue wait > 1 ms
    serve::Server server(options);
    server.start();

    serve::Client client(server.options().socket_path);
    std::vector<std::uint8_t> bytes = corpus_image_bytes(16, 5);
    EXPECT_EQ(Code::Timeout, client.submit(bytes).code);

    server.request_shutdown();
    server.wait();
}

TEST(ServeDrain, PipelinedSubmitsAcrossShutdownAreAllAnswered)
{
    bir::BinaryImage image;
    std::vector<std::uint8_t> bytes =
        corpus_image_bytes(16, 6, &image);

    serve::ServerOptions options = base_options("drain");
    options.batch_window_ms = 50;
    serve::Server server(options);
    server.start();
    std::string expected =
        serve::submit_response_text(image, server.options().rock);

    // One connection, three back-to-back frames: a submit that will
    // still be queued when the pipelined shutdown lands, then a
    // submit arriving after the drain began. Every request gets an
    // answer; the queued one completes, the late one is refused.
    int fd = raw_connect(server.options().socket_path);
    serve::protocol::write_frame(
        fd, serve::protocol::request_header(1, "submit"),
        bytes.data(), bytes.size());
    serve::protocol::write_frame(
        fd, serve::protocol::request_header(2, "shutdown"), nullptr,
        0);
    serve::protocol::write_frame(
        fd, serve::protocol::request_header(3, "submit"),
        bytes.data(), bytes.size());

    std::map<std::int64_t, serve::protocol::Response> by_id;
    for (int i = 0; i < 3; ++i) {
        serve::protocol::Response response = read_response(fd);
        by_id[response.id] = response;
    }
    ::close(fd);

    ASSERT_EQ(3u, by_id.size());
    EXPECT_EQ(Code::Ok, by_id[1].code);
    EXPECT_EQ(expected, payload_text(by_id[1]));
    EXPECT_EQ(Code::Ok, by_id[2].code);
    EXPECT_EQ(Code::Draining, by_id[3].code);

    server.wait();
    EXPECT_TRUE(server.done());
}

} // namespace

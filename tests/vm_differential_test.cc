/**
 * @file
 * Differential regression: run every bundled --builtin image under
 * rockvm and assert (a) zero traps on clean toyc output and (b) the
 * containment invariant dynamic ⊆ static -- every typed tracelet the
 * interpreter witnesses concretely also appears in the tracelet set
 * symexec extracts statically for the same type.
 *
 * The static side runs with a boosted path budget (max_paths high
 * enough that no builtin saturates it): the default budget caps
 * exploration per function, and a concretely reachable path that the
 * static side *truncated away* would be a budget artifact, not a
 * mirror bug. The tier-1 vm-differential fuzz oracle applies the same
 * escalation before declaring a miss.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "toyc/compiler.h"
#include "vm/vm.h"

namespace {

using namespace rock;
using vm::Interpreter;
using vm::VmConfig;
using vm::VmResult;

/** All 24 bundled programs: 5 examples + 19 Table 2 benchmarks. */
std::vector<corpus::CorpusProgram>
builtin_programs()
{
    std::vector<corpus::CorpusProgram> out = {
        corpus::streams_program(),      corpus::datasources_program(),
        corpus::echoparams_program(),   corpus::cgrid_program(),
        corpus::multiple_inheritance_program(),
    };
    for (const auto& bench : corpus::table2_benchmarks())
        out.push_back(bench.program);
    return out;
}

/** Static tracelet sets per type, boosted so paths are not truncated. */
std::map<std::uint32_t, std::set<analysis::Tracelet>>
static_sets(const bir::BinaryImage& image)
{
    analysis::SymExecConfig cfg;
    cfg.max_paths = 4096;
    analysis::AnalysisResult result = analysis::analyze(image, cfg);
    std::map<std::uint32_t, std::set<analysis::Tracelet>> sets;
    for (const auto& [type, tracelets] : result.type_tracelets)
        sets[type].insert(tracelets.begin(), tracelets.end());
    return sets;
}

TEST(VmDifferential, AllBuiltinsRunCleanAndContained)
{
    for (const auto& prog : builtin_programs()) {
        SCOPED_TRACE(prog.name);
        toyc::CompileResult built =
            toyc::compile(prog.program, prog.options);
        analysis::AnalysisResult analysis =
            analysis::analyze(built.image);
        Interpreter interp(built.image, analysis, VmConfig{});
        VmResult dynamic = interp.run_image(1);

        // (a) clean images never trap.
        ASSERT_TRUE(dynamic.traps.empty())
            << prog.name << ": first trap "
            << vm::trap_name(dynamic.traps.front().kind) << " at 0x"
            << std::hex << dynamic.traps.front().addr;

        // The run did real work.
        EXPECT_GT(dynamic.stats.steps, 0u);
        EXPECT_FALSE(dynamic.coverage.empty());

        // (b) dynamic ⊆ static per type.
        auto sets = static_sets(built.image);
        for (const auto& [type, tracelets] : dynamic.type_tracelets) {
            auto it = sets.find(type);
            ASSERT_NE(it, sets.end())
                << prog.name << ": type 0x" << std::hex << type
                << " witnessed dynamically but absent statically";
            for (const auto& t : tracelets) {
                EXPECT_EQ(it->second.count(t), 1u)
                    << prog.name << ": dynamic tracelet for type 0x"
                    << std::hex << type
                    << " missing from the static set";
            }
        }
    }
}

TEST(VmDifferential, DynamicTypedCoverageIsNonTrivial)
{
    // At least the canonical single-inheritance example must witness
    // typed tracelets dynamically -- an empty dynamic side would make
    // the containment check vacuous.
    corpus::CorpusProgram prog = corpus::streams_program();
    toyc::CompileResult built =
        toyc::compile(prog.program, prog.options);
    analysis::AnalysisResult analysis = analysis::analyze(built.image);
    Interpreter interp(built.image, analysis, VmConfig{});
    VmResult dynamic = interp.run_image(1);
    EXPECT_FALSE(dynamic.type_tracelets.empty());
    std::size_t total = 0;
    for (const auto& [type, tracelets] : dynamic.type_tracelets)
        total += tracelets.size();
    EXPECT_GE(total, 3u);
}

} // namespace

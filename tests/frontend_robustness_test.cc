/**
 * @file
 * Fuzz-style robustness for the textual front-end and the VMI
 * loader: adversarial inputs must produce clean FatalErrors (with
 * positions, for the parser), never crashes, hangs, or silent
 * acceptance of garbage.
 */
#include <gtest/gtest.h>

#include <string>

#include "bir/serialize.h"
#include "support/error.h"
#include "support/rng.h"
#include "toyc/compiler.h"
#include "toyc/parser.h"

namespace {

using namespace rock;
using rock::support::FatalError;

TEST(ParserFuzz, RandomTokenSoupNeverCrashes)
{
    const char* tokens[] = {"class",  "fn",    "virtual", "pure",
                            "fields", "ctor",  "dtor",    "new",
                            "delete", "if",    "else",    "loop",
                            "read",   "write", "return",  "A",
                            "x",      "7",     "{",       "}",
                            "(",      ")",     ";",       ":",
                            ",",      "."};
    support::Rng rng(2024);
    int parsed_ok = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::string source;
        std::size_t len = rng.index(40);
        for (std::size_t i = 0; i < len; ++i) {
            source += tokens[rng.index(std::size(tokens))];
            source += ' ';
        }
        try {
            toyc::Program prog = toyc::parse_program(source);
            ++parsed_ok; // e.g. the empty program
        } catch (const FatalError& e) {
            // Every parser error must carry a source position.
            EXPECT_NE(std::string(e.what()).find("toyc:"),
                      std::string::npos)
                << e.what();
        }
    }
    // Sanity: the soup occasionally forms valid programs (at least
    // the empty one), but mostly does not.
    EXPECT_GT(parsed_ok, 0);
    EXPECT_LT(parsed_ok, 300);
}

TEST(ParserFuzz, RandomBytesNeverCrash)
{
    support::Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        std::string source;
        std::size_t len = rng.index(64);
        for (std::size_t i = 0; i < len; ++i)
            source += static_cast<char>(rng.uniform(1, 127));
        try {
            toyc::parse_program(source);
        } catch (const FatalError&) {
            // expected for most inputs
        }
    }
}

TEST(ParserFuzz, DeepNestingTerminates)
{
    // 200 nested loops parse fine (recursion depth is bounded by
    // input size, not exponential).
    std::string source = "fn f() { ";
    for (int i = 0; i < 200; ++i)
        source += "loop { ";
    for (int i = 0; i < 200; ++i)
        source += "} ";
    source += "}";
    toyc::Program prog = toyc::parse_program(source);
    EXPECT_EQ(prog.usages.size(), 1u);
}

TEST(VmiFuzz, BitflipsNeverCrashTheLoader)
{
    // Take a valid image and flip bytes; the loader either accepts a
    // still-consistent variant or raises FatalError.
    toyc::Program prog = toyc::parse_program(
        "class A { fields 1; virtual f; }\n"
        "fn u() { new A a; a.f(); }");
    bir::BinaryImage image = toyc::compile(prog).image;
    auto bytes = bir::save_image(image);

    support::Rng rng(99);
    for (int trial = 0; trial < 300; ++trial) {
        auto mutated = bytes;
        std::size_t flips = 1 + rng.index(4);
        for (std::size_t f = 0; f < flips; ++f) {
            std::size_t at = rng.index(mutated.size());
            mutated[at] ^= static_cast<std::uint8_t>(
                1u << rng.index(8));
        }
        try {
            bir::BinaryImage loaded = bir::load_image(mutated);
            (void)loaded;
        } catch (const FatalError&) {
            // expected for most mutations
        }
    }
}

TEST(VmiFuzz, RandomBuffersNeverCrashTheLoader)
{
    support::Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> bytes;
        std::size_t len = rng.index(256);
        for (std::size_t i = 0; i < len; ++i)
            bytes.push_back(static_cast<std::uint8_t>(rng.index(256)));
        try {
            bir::load_image(bytes);
        } catch (const FatalError&) {
        }
    }
}

} // namespace

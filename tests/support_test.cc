/**
 * @file
 * Unit tests for rock::support.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/error.h"
#include "support/log.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/str.h"

namespace {

using namespace rock::support;

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal("boom");
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Error, CheckPassesAndFails)
{
    EXPECT_NO_THROW(check(true, "fine"));
    EXPECT_THROW(check(false, "bad"), FatalError);
}

TEST(Error, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(ROCK_ASSERT(1 == 2, "math"), PanicError);
    EXPECT_NO_THROW(ROCK_ASSERT(1 == 1, "math"));
}

TEST(Log, LevelGatesMessages)
{
    LogLevel old = log_level();
    set_log_level(LogLevel::Off);
    // Just exercising the path; nothing should be printed or crash.
    log_message(LogLevel::Error, "suppressed");
    ROCK_LOG_ERROR << "also suppressed " << 42;
    set_log_level(old);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniform(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformSingletonRange)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.uniform(0, 1 << 30) == b.uniform(0, 1 << 30))
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, IndexCoversAllSlots)
{
    Rng rng(3);
    std::set<std::size_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.index(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RealWithinUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, LengthRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        std::size_t len = rng.length(2, 6);
        EXPECT_GE(len, 2u);
        EXPECT_LE(len, 6u);
    }
}

TEST(Rng, WeightedNeverPicksZeroWeight)
{
    Rng rng(13);
    std::vector<double> weights{0.0, 1.0, 0.0, 2.0};
    for (int i = 0; i < 300; ++i) {
        std::size_t pick = rng.weighted(weights);
        EXPECT_TRUE(pick == 1 || pick == 3);
    }
}

TEST(Rng, WeightedRequiresPositiveTotal)
{
    Rng rng(13);
    std::vector<double> weights{0.0, 0.0};
    EXPECT_THROW(rng.weighted(weights), PanicError);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(17);
    std::vector<int> items{1, 2, 3, 4, 5, 6};
    auto copy = items;
    rng.shuffle(items);
    std::multiset<int> a(items.begin(), items.end());
    std::multiset<int> b(copy.begin(), copy.end());
    EXPECT_EQ(a, b);
}

TEST(Str, HexFormats)
{
    EXPECT_EQ(hex(0), "0x0");
    EXPECT_EQ(hex(0x1000), "0x1000");
    EXPECT_EQ(hex(0xdeadbeef), "0xdeadbeef");
}

TEST(Str, JoinEmptyAndNonEmpty)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({"a", "b", "c"}, "; "), "a; b; c");
}

TEST(Str, FormatBasics)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(format("%05x", 0xab), "000ab");
}

TEST(Parallel, ResolveThreads)
{
    EXPECT_EQ(resolve_threads(1), 1);
    EXPECT_EQ(resolve_threads(4), 4);
    EXPECT_EQ(resolve_threads(-3), 1);
    EXPECT_GE(resolve_threads(0), 1); // hardware concurrency
}

TEST(Parallel, EveryIndexRunsExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        std::vector<int> hits(101, 0);
        pool.parallel_for(hits.size(), [&](std::size_t i) {
            hits[i] += 1; // slot write, no synchronization needed
        });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 101);
        EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                                [](int h) { return h == 1; }));
    }
}

TEST(Parallel, PoolIsReusableAcrossLoops)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> sum{0};
        pool.parallel_for(50, [&](std::size_t i) {
            sum += static_cast<int>(i);
        });
        EXPECT_EQ(sum.load(), 49 * 50 / 2);
    }
}

TEST(Parallel, ExceptionPropagatesToCaller)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallel_for(10,
                                       [](std::size_t i) {
                                           if (i == 7)
                                               throw std::runtime_error(
                                                   "item 7");
                                       }),
                     std::runtime_error);
        // The pool must survive a throwing loop and run the next one.
        std::atomic<int> count{0};
        pool.parallel_for(10, [&](std::size_t) { ++count; });
        EXPECT_EQ(count.load(), 10);
    }
}

TEST(Parallel, EmptyAndSingleItemLoops)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(Parallel, ZeroItemLoopAcrossPoolSizes)
{
    // An empty index space must return immediately (no worker
    // wake-up deadlock) for the inline pool, a normal pool, and an
    // oversubscribed one -- and leave the pool usable.
    for (int threads : {1, 2, 8, 19}) {
        SCOPED_TRACE(threads);
        ThreadPool pool(threads);
        int calls = 0;
        pool.parallel_for(0, [&](std::size_t) { ++calls; });
        EXPECT_EQ(calls, 0);
        std::atomic<int> after{0};
        pool.parallel_for(3, [&](std::size_t) { ++after; });
        EXPECT_EQ(after.load(), 3);
    }
}

TEST(Parallel, OversubscribedPoolCoversEveryItem)
{
    // More workers than items: most strides are empty, every item
    // still runs exactly once.
    ThreadPool pool(16);
    std::vector<int> hits(5, 0);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i] += 1; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
}

TEST(Parallel, AllWorkersThrowingStillRecovers)
{
    // Every stride throws on its first item; exactly one exception
    // reaches the caller and the pool keeps working afterwards.
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       throw std::runtime_error(
                                           "item " +
                                           std::to_string(i));
                                   }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(Parallel, InlinePoolPropagatesExceptionAndSurvives)
{
    // threads=1 runs inline on the caller; the exception path must
    // behave exactly like the threaded one.
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallel_for(4,
                                   [](std::size_t i) {
                                       if (i == 2)
                                           throw std::logic_error(
                                               "inline");
                                   }),
                 std::logic_error);
    int calls = 0;
    pool.parallel_for(4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 4);
}

TEST(Parallel, HeterogeneousStageReuse)
{
    // The pipeline drives one pool through stages of very different
    // shapes (many tiny items, then few heavy ones, then none).
    ThreadPool pool(3);
    std::vector<int> small(200, 0);
    pool.parallel_for(small.size(),
                      [&](std::size_t i) { small[i] = 1; });
    std::vector<long> heavy(2, 0);
    pool.parallel_for(heavy.size(), [&](std::size_t i) {
        long acc = 0;
        for (int j = 0; j < 10000; ++j)
            acc += static_cast<long>(i) + j;
        heavy[i] = acc;
    });
    pool.parallel_for(0, [&](std::size_t) { FAIL(); });
    EXPECT_EQ(std::accumulate(small.begin(), small.end(), 0), 200);
    EXPECT_EQ(heavy[0] + 10000 * static_cast<long>(1),
              heavy[1]);
}

TEST(Parallel, OneShotHelperMatchesPool)
{
    std::vector<int> hits(37, 0);
    parallel_for(hits.size(), 3,
                 [&](std::size_t i) { hits[i] += 1; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
}

// ---------------------------------------------------------------------
// Cost-aware chunk planning
// ---------------------------------------------------------------------

TEST(PlanChunks, CoversIndexSpaceContiguously)
{
    for (std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
        for (std::size_t workers : {1u, 2u, 4u, 16u}) {
            ChunkPlan plan;
            auto chunks = plan_chunks(count, workers, plan);
            std::size_t next = 0;
            for (const Chunk& c : chunks) {
                EXPECT_EQ(c.begin, next);
                EXPECT_LT(c.begin, c.end);
                next = c.end;
            }
            EXPECT_EQ(next, count);
        }
    }
}

TEST(PlanChunks, ChunkCountBoundedByTarget)
{
    // Chunks never exceed workers * chunks_per_worker; the inline
    // (1-worker) path then runs them in index order, which is
    // exactly the plain loop.
    ChunkPlan plan;
    EXPECT_LE(plan_chunks(100, 1, plan).size(),
              plan.chunks_per_worker);
    EXPECT_LE(plan_chunks(1000, 4, plan).size(),
              4 * plan.chunks_per_worker);
    // Fewer items than the target: one item per chunk at most.
    EXPECT_LE(plan_chunks(3, 8, plan).size(), 3u);
}

TEST(PlanChunks, GrainBoundsChunkCount)
{
    ChunkPlan plan;
    plan.grain = 10;
    auto chunks = plan_chunks(32, 8, plan);
    for (const Chunk& c : chunks)
        EXPECT_GE(c.end - c.begin, 1u);
    // 32 items at grain 10 can make at most ceil(32/10) = 4 chunks.
    EXPECT_LE(chunks.size(), 4u);
}

TEST(PlanChunks, CostsEqualizeCumulativeWork)
{
    // One huge item up front must not drag its whole static share
    // along with it: the expensive item gets a chunk of its own.
    std::vector<std::uint64_t> costs(16, 1);
    costs[0] = 1000;
    ChunkPlan plan;
    plan.costs = costs.data();
    plan.chunks_per_worker = 2;
    auto chunks = plan_chunks(costs.size(), 4, plan);
    ASSERT_GE(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].begin, 0u);
    EXPECT_EQ(chunks[0].end, 1u);
    std::size_t next = 0;
    for (const Chunk& c : chunks) {
        EXPECT_EQ(c.begin, next);
        next = c.end;
    }
    EXPECT_EQ(next, costs.size());
}

TEST(PlanChunks, DeterministicForSameInputs)
{
    std::vector<std::uint64_t> costs;
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        costs.push_back(
            static_cast<std::uint64_t>(rng.uniform(0, 49)));
    ChunkPlan plan;
    plan.costs = costs.data();
    auto a = plan_chunks(costs.size(), 8, plan);
    auto b = plan_chunks(costs.size(), 8, plan);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
    }
}

// ---------------------------------------------------------------------
// Chunked parallel_for: coverage + determinism sweep
// ---------------------------------------------------------------------

TEST(Parallel, ChunkedEveryIndexRunsExactlyOnce)
{
    std::vector<std::uint64_t> costs(301);
    Rng rng(17);
    for (auto& c : costs)
        c = static_cast<std::uint64_t>(rng.uniform(0, 19));
    ChunkPlan plan;
    plan.costs = costs.data();
    for (int threads : {1, 2, 5}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(costs.size());
        for (auto& h : hits)
            h.store(0);
        pool.parallel_for(costs.size(), plan,
                          [&](std::size_t i) { hits[i] += 1; });
        for (const auto& h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Parallel, ChunkedDeterminismSweep)
{
    // The determinism contract: items write only their own slot, so
    // the merged output is bit-identical at every thread count and
    // under every chunk schedule. Simulate a cost-skewed stage and
    // sweep threads {1, 2, hw}.
    const std::size_t n = 400;
    std::vector<std::uint64_t> costs(n);
    Rng rng(23);
    for (auto& c : costs)
        c = static_cast<std::uint64_t>(rng.uniform(1, 100));
    ChunkPlan plan;
    plan.costs = costs.data();

    auto run = [&](int threads) {
        ThreadPool pool(threads);
        std::vector<double> out(n, 0.0);
        pool.parallel_for(n, plan, [&](std::size_t i) {
            // Work whose result depends on floating-point
            // accumulation order *within* the item only.
            double acc = 0.0;
            for (std::uint64_t j = 0; j < costs[i]; ++j)
                acc += 1.0 / static_cast<double>(i + j + 1);
            out[i] = acc;
        });
        return out;
    };

    std::vector<double> serial = run(1);
    const int hw = resolve_threads(0);
    for (int threads : {2, hw}) {
        std::vector<double> parallel = run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(std::memcmp(&parallel[i], &serial[i],
                                  sizeof(double)),
                      0)
                << "slot " << i << " differs at " << threads
                << " threads";
    }
}

TEST(Parallel, ChunkedExceptionPropagates)
{
    ChunkPlan plan;
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(64, plan,
                                   [&](std::size_t i) {
                                       if (i == 40)
                                           throw std::runtime_error(
                                               "chunked boom");
                                   }),
                 std::runtime_error);
    // The pool survives for the next loop.
    int calls = 0;
    pool.parallel_for(4, plan, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 4);
}

} // namespace

/**
 * @file
 * Tests for the structural-subtyping constraint pass (src/typeinf/).
 *
 * Exact solved-fact and sketch goldens on compiler-built chains and
 * multiple-inheritance programs, exact inconsistency goldens on
 * hand-assembled malformed images (one per InconsistencyKind,
 * including the rockcheck subtype-inconsistent negative test), a
 * determinism sweep across thread counts, and tolerance of corrupted
 * or truncated bodies.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/vtable_scan.h"
#include "bir/builder.h"
#include "cfg/cfg_cache.h"
#include "corpus/builder.h"
#include "corpus/examples.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"
#include "typeinf/typeinf.h"

namespace {

using namespace rock;
using bir::FuncId;
using bir::FunctionBuilder;
using bir::ImageBuilder;
using bir::VtId;
using typeinf::InconsistencyKind;
using typeinf::TypeInfResult;

using Edge = std::pair<std::uint32_t, std::uint32_t>;

/** Compile and infer, keeping the debug map for name -> vtable. */
struct Inferred {
    toyc::CompileResult compiled;
    TypeInfResult ti;

    std::uint32_t
    vt(const std::string& cls) const
    {
        return compiled.debug.class_to_vtable.at(cls);
    }

    const typeinf::TypeSketch&
    sketch(const std::string& cls) const
    {
        int idx = ti.index_of(vt(cls));
        EXPECT_GE(idx, 0) << cls;
        return ti.sketches[static_cast<std::size_t>(idx)];
    }
};

Inferred
run(const corpus::CorpusProgram& program, int threads = 1)
{
    Inferred r;
    r.compiled = toyc::compile(program.program, program.options);
    r.ti = typeinf::infer(r.compiled.image, threads);
    return r;
}

/** A -> B -> C chain, one new method and one new field per level. */
corpus::CorpusProgram
chain_program()
{
    corpus::ProgramBuilder b("chain");
    b.cls("A", {}, {"fa"}, {}, 1);
    b.cls("B", {"A"}, {"fb"}, {}, 1);
    b.cls("C", {"B"}, {"fc"}, {}, 1);
    b.motif("A", {"fa"});
    b.motif("B", {"fb"});
    b.motif("C", {"fc"});
    b.standard_scenarios(1);
    corpus::CorpusProgram program;
    program.name = "chain";
    program.program = b.build();
    return program;
}

std::vector<Edge>
sorted(std::vector<Edge> edges)
{
    std::sort(edges.begin(), edges.end());
    return edges;
}

// ---- solved facts on compiler output -------------------------------------

TEST(Solve, ChainDirectAndTransitiveEdges)
{
    Inferred r = run(chain_program());
    ASSERT_EQ(r.ti.types.size(), 3u);
    EXPECT_TRUE(r.ti.inconsistencies.empty());

    std::uint32_t a = r.vt("A");
    std::uint32_t b = r.vt("B");
    std::uint32_t c = r.vt("C");
    EXPECT_EQ(sorted(r.ti.direct_edges),
              sorted({{b, a}, {c, b}}));
    EXPECT_EQ(sorted(r.ti.subtype_edges),
              sorted({{b, a}, {c, a}, {c, b}}));

    EXPECT_TRUE(r.ti.subtype(c, a));
    EXPECT_TRUE(r.ti.subtype(c, b));
    EXPECT_TRUE(r.ti.subtype(b, a));
    EXPECT_FALSE(r.ti.subtype(a, c));
    EXPECT_FALSE(r.ti.subtype(a, b));
    EXPECT_FALSE(r.ti.subtype(c, 0xdeadbeef));
    EXPECT_EQ(r.ti.index_of(0xdeadbeef), -1);
}

TEST(Solve, ChainSketchesSaturateBaseToDerived)
{
    Inferred r = run(chain_program());
    const auto& a = r.sketch("A");
    const auto& b = r.sketch("B");
    const auto& c = r.sketch("C");

    // One new method per level.
    EXPECT_EQ(a.arity, 1);
    EXPECT_EQ(b.arity, 2);
    EXPECT_EQ(c.arity, 3);

    // Single-inheritance chain: only primary vptrs.
    EXPECT_EQ(a.vptr_offsets, (std::vector<std::int32_t>{0}));
    EXPECT_EQ(b.vptr_offsets, (std::vector<std::int32_t>{0}));
    EXPECT_EQ(c.vptr_offsets, (std::vector<std::int32_t>{0}));

    // Scenarios dispatch every inherited motif slot; saturation pushes
    // base slots into the derived sketches.
    EXPECT_EQ(a.slots, (std::vector<int>{0}));
    EXPECT_EQ(b.slots, (std::vector<int>{0, 1}));
    EXPECT_EQ(c.slots, (std::vector<int>{0, 1, 2}));

    // Field evidence likewise flows downward, never upward.
    for (std::int32_t off : a.fields) {
        EXPECT_TRUE(std::count(b.fields.begin(), b.fields.end(), off));
        EXPECT_TRUE(std::count(c.fields.begin(), c.fields.end(), off));
    }
    for (std::int32_t off : b.fields)
        EXPECT_TRUE(std::count(c.fields.begin(), c.fields.end(), off));

    // Every scenario object was bound to its type.
    EXPECT_GT(a.num_vars, 0);
    EXPECT_GT(b.num_vars, 0);
    EXPECT_GT(c.num_vars, 0);
}

TEST(Solve, MultipleInheritanceSecondarySubobject)
{
    Inferred r = run(corpus::multiple_inheritance_program());
    EXPECT_TRUE(r.ti.inconsistencies.empty());

    std::uint32_t serializable = r.vt("Serializable");
    std::uint32_t observable = r.vt("Observable");
    std::uint32_t model = r.vt("Model");
    std::uint32_t snapshot = r.vt("Snapshot");

    // Model's primary subobject derives from Serializable; the
    // Observable base lives behind Model's *secondary* vtable -- the
    // one discovered type that no debug name maps to.
    EXPECT_TRUE(r.ti.subtype(model, serializable));
    EXPECT_TRUE(r.ti.subtype(snapshot, serializable));
    EXPECT_FALSE(r.ti.subtype(model, observable));

    std::vector<std::uint32_t> named;
    for (const auto& [cls, vt] : r.compiled.debug.class_to_vtable) {
        (void)cls;
        named.push_back(vt);
    }
    std::vector<std::uint32_t> secondaries;
    for (std::uint32_t vt : r.ti.types) {
        if (!std::count(named.begin(), named.end(), vt))
            secondaries.push_back(vt);
    }
    ASSERT_EQ(secondaries.size(), 1u);
    EXPECT_TRUE(r.ti.subtype(secondaries[0], observable));
}

// ---- determinism ---------------------------------------------------------

void
expect_identical(const TypeInfResult& a, const TypeInfResult& b)
{
    EXPECT_EQ(a.types, b.types);
    EXPECT_EQ(a.constraints.constraints, b.constraints.constraints);
    EXPECT_EQ(a.constraints.num_vars, b.constraints.num_vars);
    EXPECT_EQ(a.constraints.this_vars, b.constraints.this_vars);
    EXPECT_EQ(a.constraints.unique_bodies, b.constraints.unique_bodies);
    EXPECT_EQ(a.sketches, b.sketches);
    EXPECT_EQ(a.direct_edges, b.direct_edges);
    EXPECT_EQ(a.subtype_edges, b.subtype_edges);
    EXPECT_EQ(a.inconsistencies, b.inconsistencies);
    EXPECT_EQ(a.var_type, b.var_type);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, BitIdenticalAcrossThreadCounts)
{
    corpus::CorpusProgram program =
        corpus::multiple_inheritance_program();
    toyc::CompileResult compiled =
        toyc::compile(program.program, program.options);

    int hw = static_cast<int>(std::thread::hardware_concurrency());
    TypeInfResult one = typeinf::infer(compiled.image, 1);
    TypeInfResult two = typeinf::infer(compiled.image, 2);
    TypeInfResult many = typeinf::infer(compiled.image, std::max(hw, 3));
    expect_identical(one, two);
    expect_identical(one, many);

    EXPECT_EQ(one.stats.functions_walked,
              compiled.image.functions.size());
    EXPECT_GT(one.stats.constraints, 0u);
    EXPECT_LE(one.stats.unique_bodies, one.stats.functions_walked);
}

// ---- hand-assembled inconsistency goldens --------------------------------

/** Emit `getarg this; store vt; [tail]` -- a minimal ctor body. */
FunctionBuilder
ctor_body(VtId vt)
{
    FunctionBuilder fb;
    fb.getarg(0, 0);
    fb.movi_vtable(1, vt);
    fb.store(0, 0, 1);
    return fb;
}

/** `alloc 16; call ctor` prologue shared by the corrupt images. */
void
alloc_and_construct(FunctionBuilder& fb, FuncId ctor)
{
    fb.movi(1, 16);
    fb.setarg(0, 1);
    fb.call_addr(bir::kAllocStub);
    fb.getret(0);
    fb.setarg(0, 0);
    fb.call(ctor);
}

/** One class A with a 1-slot vtable, plus a user function that
 *  dispatches slot @p slot on a fresh A. */
bir::BinaryImage
dispatch_image(int slot)
{
    ImageBuilder ib;
    FuncId method = ib.declare_function("A::f");
    FunctionBuilder fm;
    fm.movi(0, 1);
    fm.retval(0);
    ib.define_function(method, fm);
    VtId vta = ib.add_vtable("A", 1);
    ib.set_slot(vta, 0, method);

    FuncId ctor = ib.declare_function("A::A");
    FunctionBuilder fc = ctor_body(vta);
    fc.ret();
    ib.define_function(ctor, fc);

    FuncId use = ib.declare_function("use");
    FunctionBuilder fu;
    alloc_and_construct(fu, ctor);
    fu.load(1, 0, 0);
    fu.load(2, 1, slot * bir::kWordSize);
    fu.icall(2);
    fu.ret();
    ib.define_function(use, fu);
    return ib.link({});
}

TEST(Inconsistencies, DispatchBeyondArityIsSlotArity)
{
    bir::BinaryImage image = dispatch_image(/*slot=*/5);
    TypeInfResult ti = typeinf::infer(image);

    ASSERT_EQ(ti.inconsistencies.size(), 1u);
    const typeinf::Inconsistency& inc = ti.inconsistencies[0];
    EXPECT_EQ(inc.kind, InconsistencyKind::SlotArity);
    ASSERT_EQ(ti.types.size(), 1u);
    EXPECT_EQ(inc.vtable_a, ti.types[0]);
    EXPECT_NE(inc.detail.find("slot 5"), std::string::npos);
    EXPECT_EQ(ti.stats.inconsistencies, 1u);

    // The same program dispatching a real slot is clean.
    TypeInfResult ok = typeinf::infer(dispatch_image(/*slot=*/0));
    EXPECT_TRUE(ok.inconsistencies.empty());
    ASSERT_EQ(ok.sketches.size(), 1u);
    EXPECT_EQ(ok.sketches[0].slots, (std::vector<int>{0}));
}

TEST(Inconsistencies, FieldEvidenceAtVptrOffsetIsFieldOverlap)
{
    // A plain method reads [this+0] without completing the dispatch
    // idiom -- field evidence colliding with the primary vptr.
    ImageBuilder ib;
    FuncId method = ib.declare_function("A::f");
    FunctionBuilder fm;
    fm.movi(0, 1);
    fm.retval(0);
    ib.define_function(method, fm);
    VtId vta = ib.add_vtable("A", 1);
    ib.set_slot(vta, 0, method);

    FuncId ctor = ib.declare_function("A::A");
    FunctionBuilder fc = ctor_body(vta);
    fc.ret();
    ib.define_function(ctor, fc);

    FuncId getf = ib.declare_function("A::raw_vptr");
    FunctionBuilder fg;
    fg.getarg(0, 0);
    fg.load(1, 0, 0);
    fg.retval(1);
    ib.define_function(getf, fg);

    FuncId use = ib.declare_function("use");
    FunctionBuilder fu;
    alloc_and_construct(fu, ctor);
    fu.setarg(0, 0);
    fu.call(getf);
    fu.ret();
    ib.define_function(use, fu);
    bir::BinaryImage image = ib.link({});

    TypeInfResult ti = typeinf::infer(image);
    ASSERT_EQ(ti.inconsistencies.size(), 1u);
    EXPECT_EQ(ti.inconsistencies[0].kind,
              InconsistencyKind::FieldOverlap);
    EXPECT_EQ(ti.inconsistencies[0].vtable_a, ti.types.at(0));
    EXPECT_EQ(ti.inconsistencies[0].func_addr,
              ib.func_addr(getf));
}

TEST(Inconsistencies, MutualCtorFlowIsCyclicDerivesAndEdgesDrop)
{
    // Two equal-arity classes whose ctors each call the other as a
    // parent ctor: both orientations are layout-feasible, so the
    // evidence forms a derives-from cycle.
    ImageBuilder ib;
    FuncId fa = ib.declare_function("A::f");
    FunctionBuilder fba;
    fba.movi(0, 1);
    fba.retval(0);
    ib.define_function(fa, fba);
    FuncId fb = ib.declare_function("B::f");
    FunctionBuilder fbb;
    fbb.movi(0, 2);
    fbb.retval(0);
    ib.define_function(fb, fbb);

    VtId vta = ib.add_vtable("A", 1);
    ib.set_slot(vta, 0, fa);
    VtId vtb = ib.add_vtable("B", 1);
    ib.set_slot(vtb, 0, fb);

    FuncId ctor_a = ib.declare_function("A::A");
    FuncId ctor_b = ib.declare_function("B::B");
    FunctionBuilder fca = ctor_body(vta);
    fca.setarg(0, 0);
    fca.call(ctor_b);
    fca.ret();
    ib.define_function(ctor_a, fca);
    FunctionBuilder fcb = ctor_body(vtb);
    fcb.setarg(0, 0);
    fcb.call(ctor_a);
    fcb.ret();
    ib.define_function(ctor_b, fcb);
    bir::BinaryImage image = ib.link({});

    TypeInfResult ti = typeinf::infer(image);
    ASSERT_EQ(ti.inconsistencies.size(), 1u);
    EXPECT_EQ(ti.inconsistencies[0].kind,
              InconsistencyKind::CyclicDerives);
    EXPECT_NE(ti.inconsistencies[0].detail.find("cycle"),
              std::string::npos);
    // Cycle edges are isolated, not propagated.
    EXPECT_TRUE(ti.direct_edges.empty());
    EXPECT_TRUE(ti.subtype_edges.empty());
}

// ---- rockcheck integration (the 12th diagnostic) -------------------------

TEST(Diagnostics, InconsistencySurfacesAsSubtypeInconsistent)
{
    TypeInfResult ti = typeinf::infer(dispatch_image(/*slot=*/5));
    std::vector<cfg::Diagnostic> diags = ti.diagnostics();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, cfg::DiagKind::SubtypeInconsistent);
    EXPECT_STREQ(cfg::diag_name(diags[0].kind),
                 "subtype-inconsistent");
    EXPECT_NE(diags[0].detail.find("slot-arity"), std::string::npos);
}

TEST(Diagnostics, PipelineReportsCorruptionCleanImageStaysClean)
{
    // Targeted-corruption negative test: the full pipeline must
    // surface the solver's finding among its diagnostics...
    core::RockConfig config;
    core::ReconstructionResult bad =
        core::reconstruct(dispatch_image(/*slot=*/5), config);
    bool found = false;
    for (const cfg::Diagnostic& d : bad.diagnostics)
        found |= d.kind == cfg::DiagKind::SubtypeInconsistent;
    EXPECT_TRUE(found);

    // ...and report nothing on well-formed compiler output.
    corpus::CorpusProgram program = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(program.program, program.options);
    core::ReconstructionResult good =
        core::reconstruct(compiled.image, config);
    for (const cfg::Diagnostic& d : good.diagnostics)
        EXPECT_NE(d.kind, cfg::DiagKind::SubtypeInconsistent)
            << d.detail;
}

// ---- malformed input tolerance -------------------------------------------

/** Infer over an (intentionally damaged) image exactly the way the
 *  pipeline stage does: tolerant CFG recovery feeds the generator;
 *  the vtable set comes from the pristine image, as it would from the
 *  earlier analysis stage. */
TypeInfResult
infer_damaged(bir::BinaryImage image,
              const std::vector<analysis::VTableInfo>& vtables,
              void (*damage)(bir::BinaryImage&))
{
    damage(image);
    support::ThreadPool pool(2);
    cfg::CfgCache cache(image);
    cache.build_all(pool);
    return typeinf::infer(image, cache, vtables, pool);
}

TEST(Robustness, UndecodableBodyIsSkippedNotFatal)
{
    corpus::CorpusProgram program = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(program.program, program.options);
    std::vector<analysis::VTableInfo> vtables =
        analysis::scan_vtables(compiled.image);

    TypeInfResult ti = infer_damaged(
        compiled.image, vtables, [](bir::BinaryImage& image) {
            // Clobber the opcode of every function's first instruction.
            for (const bir::FunctionEntry& fn : image.functions)
                image.code[fn.addr - image.code_base] = 0xff;
        });
    EXPECT_EQ(ti.stats.functions_walked,
              compiled.image.functions.size());
}

TEST(Robustness, TruncatedBodyIsTolerated)
{
    corpus::CorpusProgram program = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(program.program, program.options);
    std::vector<analysis::VTableInfo> vtables =
        analysis::scan_vtables(compiled.image);

    TypeInfResult ti = infer_damaged(
        compiled.image, vtables, [](bir::BinaryImage& image) {
            // Cut the code section mid-instruction; the trailing
            // function's body no longer fully decodes.
            image.code.resize(image.code.size() -
                              bir::kInstrSize / 2);
        });
    EXPECT_EQ(ti.stats.functions_walked,
              compiled.image.functions.size());
}

} // namespace

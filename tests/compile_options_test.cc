/**
 * @file
 * End-to-end effects of the compiler's optimization levers on the
 * analyses -- each lever models a real-world condition the paper
 * discusses.
 */
#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "corpus/benchmarks.h"
#include "corpus/examples.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;

TEST(CompileOptions, OutOfLineCtorsHideUsageTracelets)
{
    // With constructors kept out of line, allocation sites never see
    // a vptr store, so usage-function events cannot be attributed --
    // the paper's premise that ctor inlining is what exposes
    // behavior to an intra-procedural analysis.
    corpus::CorpusProgram example = corpus::streams_program();

    toyc::CompileResult inlined =
        toyc::compile(example.program, example.options);
    example.options.inline_ctors_at_alloc = false;
    toyc::CompileResult outofline =
        toyc::compile(example.program, example.options);

    auto tracelet_count = [](const toyc::CompileResult& compiled) {
        analysis::AnalysisResult result =
            analysis::analyze(compiled.image);
        std::size_t total = 0;
        for (const auto& [vt, tracelets] : result.type_tracelets) {
            (void)vt;
            total += tracelets.size();
        }
        return total;
    };
    EXPECT_GT(tracelet_count(inlined), tracelet_count(outofline));

    // The pipeline still runs and still covers every type.
    core::ReconstructionResult result =
        core::reconstruct(outofline.image);
    EXPECT_EQ(result.hierarchy.size(), 3);
}

TEST(CompileOptions, PerClassCtorInliningRemovesOnlyThatCue)
{
    // Force-inline the parent-ctor call of exactly one class; the
    // sibling keeps its rule-3 evidence.
    corpus::CorpusProgram example = corpus::streams_program();
    example.options.parent_ctor_calls = true;
    example.options.force_inline_parent_ctor = {"FlushableStream"};
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    core::ReconstructionResult result =
        core::reconstruct(compiled.image);

    int confirmable = result.structural.index_of(
        compiled.debug.class_to_vtable.at("ConfirmableStream"));
    int flushable = result.structural.index_of(
        compiled.debug.class_to_vtable.at("FlushableStream"));
    EXPECT_EQ(result.structural.forced_parents.count(confirmable), 1u);
    EXPECT_EQ(result.structural.forced_parents.count(flushable), 0u);

    // The behavioral ranking still reconstructs the full hierarchy.
    eval::GroundTruth gt =
        eval::ground_truth_from_debug(compiled.debug);
    eval::AppDistance d =
        eval::application_distance(result.hierarchy, gt);
    EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0);
}

TEST(CompileOptions, NoFoldKeepsNoiseTypesApart)
{
    // td_unittest's two roots merge *because* of folding; disabling
    // folding keeps them in separate families.
    corpus::CorpusProgram example =
        corpus::benchmark_by_name("td_unittest").program;
    toyc::CompileResult folded =
        toyc::compile(example.program, example.options);
    core::ReconstructionResult merged =
        core::reconstruct(folded.image);
    EXPECT_EQ(merged.structural.num_families(), 1);

    example.options.fold_identical_functions = false;
    toyc::CompileResult unfolded =
        toyc::compile(example.program, example.options);
    core::ReconstructionResult apart =
        core::reconstruct(unfolded.image);
    EXPECT_EQ(apart.structural.num_families(), 2);
}

TEST(CompileOptions, KeepingAbstractVtablesRestoresTheParent)
{
    // With abstract classes retained, the cgrid pairs regain their
    // real parents and the reconstruction is exact against the
    // (now larger) binary ground truth.
    corpus::CorpusProgram example = corpus::cgrid_program();
    example.options.omit_abstract_classes = false;
    example.options.parent_ctor_calls = true;
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt =
        eval::ground_truth_from_debug(compiled.debug);
    EXPECT_EQ(gt.types.size(), 6u); // 4 concrete + 2 abstract

    core::ReconstructionResult result =
        core::reconstruct(compiled.image);
    eval::AppDistance d =
        eval::application_distance(result.hierarchy, gt);
    EXPECT_DOUBLE_EQ(d.avg_missing, 0.0);
    EXPECT_DOUBLE_EQ(d.avg_added, 0.0);
}

} // namespace

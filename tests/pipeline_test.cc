/**
 * @file
 * Unit/integration tests for the end-to-end Rock pipeline.
 */
#include <gtest/gtest.h>

#include "corpus/examples.h"
#include "divergence/metrics.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::core;

ReconstructionResult
run(const corpus::CorpusProgram& example, const RockConfig& config = {})
{
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    return reconstruct(compiled.image, config);
}

TEST(Pipeline, DistancesOnlyOnFeasibleEdges)
{
    ReconstructionResult result = run(corpus::streams_program());
    // Streams family: feasible edges are Stream->Confirmable,
    // Stream->Flushable, Confirmable->Flushable.
    EXPECT_EQ(result.distances.size(), 3u);
    for (const auto& [edge, dist] : result.distances) {
        EXPECT_NE(edge.first, edge.second);
        EXPECT_GE(dist, 0.0);
    }
}

TEST(Pipeline, AmbiguousFamiliesCounted)
{
    ReconstructionResult streams = run(corpus::streams_program());
    EXPECT_EQ(streams.ambiguous_families, 1);

    // With ctor cues everywhere, nothing is ambiguous.
    corpus::CorpusProgram cued = corpus::streams_program();
    cued.options.parent_ctor_calls = true;
    ReconstructionResult resolved = run(cued);
    EXPECT_EQ(resolved.ambiguous_families, 0);
}

TEST(Pipeline, FamiliesCoverAllTypes)
{
    ReconstructionResult result = run(corpus::datasources_program());
    std::set<int> covered;
    for (const auto& fam : result.families) {
        ASSERT_FALSE(fam.alternatives.empty());
        for (int member : fam.members)
            EXPECT_TRUE(covered.insert(member).second);
        for (const auto& alt : fam.alternatives)
            EXPECT_EQ(alt.size(), fam.members.size());
    }
    EXPECT_EQ(covered.size(), result.structural.types.size());
}

TEST(Pipeline, HierarchyWithRebuildsAlternatives)
{
    corpus::CorpusProgram example = corpus::echoparams_program();
    RockConfig config;
    config.tie_epsilon = 100.0; // keep many alternatives alive
    ReconstructionResult result = run(example, config);

    std::vector<int> first(result.families.size(), 0);
    Hierarchy h0 = result.hierarchy_with(first);
    for (int v = 0; v < h0.size(); ++v)
        EXPECT_EQ(h0.parent(v), result.hierarchy.parent(v));

    // Some family has >1 surviving alternative under the huge
    // epsilon; a different pick changes the forest.
    bool found_different = false;
    for (std::size_t f = 0; f < result.families.size(); ++f) {
        if (result.families[f].alternatives.size() > 1) {
            auto picks = first;
            picks[f] = 1;
            Hierarchy h1 = result.hierarchy_with(picks);
            for (int v = 0; v < h1.size(); ++v) {
                if (h1.parent(v) != h0.parent(v))
                    found_different = true;
            }
        }
    }
    EXPECT_TRUE(found_different);
}

TEST(Pipeline, MetricIsConfigurable)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    // The paper found symmetric metrics inferior; here we only check
    // they run and produce a hierarchy over all types.
    for (auto metric :
         {divergence::MetricKind::KL, divergence::MetricKind::KLReversed,
          divergence::MetricKind::JSDivergence,
          divergence::MetricKind::JSDistance}) {
        RockConfig config;
        config.metric = metric;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        EXPECT_EQ(result.hierarchy.size(), 3);
    }
}

TEST(Pipeline, SlmFamilyIsConfigurable)
{
    corpus::CorpusProgram example = corpus::echoparams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    for (auto kind : {slm::ModelKind::PpmC, slm::ModelKind::Katz,
                      slm::ModelKind::NGram}) {
        RockConfig config;
        config.slm.kind = kind;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        // Any reasonable sequence model resolves echoparams' star.
        EXPECT_LE(d.avg_missing, 0.25) << static_cast<int>(kind);
    }
}

TEST(Pipeline, SlmDepthSweep)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (int depth : {1, 2, 3, 4}) {
        RockConfig config;
        config.slm.depth = depth;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0)
            << "depth " << depth;
    }
}

TEST(Pipeline, TraceletLengthSweep)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (int len : {3, 5, 7, 11}) {
        RockConfig config;
        config.symexec.tracelet_len = len;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0)
            << "tracelet_len " << len;
    }
}

TEST(Pipeline, EmptyImageYieldsEmptyHierarchy)
{
    bir::BinaryImage empty;
    ReconstructionResult result = reconstruct(empty);
    EXPECT_EQ(result.hierarchy.size(), 0);
    EXPECT_TRUE(result.families.empty());
}

TEST(Pipeline, WordSetStrategiesAgreeOnStreams)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (auto strategy : {divergence::WordSetStrategy::ObservedUnion,
                          divergence::WordSetStrategy::Sampled}) {
        RockConfig config;
        config.words.strategy = strategy;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0);
    }
}

} // namespace

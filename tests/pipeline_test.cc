/**
 * @file
 * Unit/integration tests for the end-to-end Rock pipeline.
 */
#include <gtest/gtest.h>

#include "corpus/examples.h"
#include "divergence/metrics.h"
#include "eval/application_distance.h"
#include "eval/ground_truth.h"
#include "rock/pipeline.h"
#include "toyc/compiler.h"

namespace {

using namespace rock;
using namespace rock::core;

ReconstructionResult
run(const corpus::CorpusProgram& example, const RockConfig& config = {})
{
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    return reconstruct(compiled.image, config);
}

TEST(Pipeline, DistancesOnlyOnFeasibleEdges)
{
    ReconstructionResult result = run(corpus::streams_program());
    // Streams family: feasible edges are Stream->Confirmable,
    // Stream->Flushable, Confirmable->Flushable.
    EXPECT_EQ(result.distances.size(), 3u);
    for (const auto& [edge, dist] : result.distances) {
        EXPECT_NE(edge.first, edge.second);
        EXPECT_GE(dist, 0.0);
    }
}

TEST(Pipeline, VerifyStageRunsByDefault)
{
    ReconstructionResult result = run(corpus::streams_program());
    // Compiled images are rockcheck clean, and the stage is timed.
    EXPECT_TRUE(result.diagnostics.empty());
    EXPECT_GT(result.timing.verify_ms, 0.0);

    RockConfig off;
    off.verify = false;
    ReconstructionResult skipped = run(corpus::streams_program(), off);
    EXPECT_TRUE(skipped.diagnostics.empty());
    EXPECT_EQ(skipped.timing.verify_ms, 0.0);
}

TEST(Pipeline, AmbiguousFamiliesCounted)
{
    ReconstructionResult streams = run(corpus::streams_program());
    EXPECT_EQ(streams.ambiguous_families, 1);

    // With ctor cues everywhere, nothing is ambiguous.
    corpus::CorpusProgram cued = corpus::streams_program();
    cued.options.parent_ctor_calls = true;
    ReconstructionResult resolved = run(cued);
    EXPECT_EQ(resolved.ambiguous_families, 0);
}

TEST(Pipeline, FamiliesCoverAllTypes)
{
    ReconstructionResult result = run(corpus::datasources_program());
    std::set<int> covered;
    for (const auto& fam : result.families) {
        ASSERT_FALSE(fam.alternatives.empty());
        for (int member : fam.members)
            EXPECT_TRUE(covered.insert(member).second);
        for (const auto& alt : fam.alternatives)
            EXPECT_EQ(alt.size(), fam.members.size());
    }
    EXPECT_EQ(covered.size(), result.structural.types.size());
}

TEST(Pipeline, HierarchyWithRebuildsAlternatives)
{
    corpus::CorpusProgram example = corpus::echoparams_program();
    RockConfig config;
    config.tie_epsilon = 100.0; // keep many alternatives alive
    ReconstructionResult result = run(example, config);

    std::vector<int> first(result.families.size(), 0);
    Hierarchy h0 = result.hierarchy_with(first);
    for (int v = 0; v < h0.size(); ++v)
        EXPECT_EQ(h0.parent(v), result.hierarchy.parent(v));

    // Some family has >1 surviving alternative under the huge
    // epsilon; a different pick changes the forest.
    bool found_different = false;
    for (std::size_t f = 0; f < result.families.size(); ++f) {
        if (result.families[f].alternatives.size() > 1) {
            auto picks = first;
            picks[f] = 1;
            Hierarchy h1 = result.hierarchy_with(picks);
            for (int v = 0; v < h1.size(); ++v) {
                if (h1.parent(v) != h0.parent(v))
                    found_different = true;
            }
        }
    }
    EXPECT_TRUE(found_different);
}

TEST(Pipeline, MetricIsConfigurable)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    // The paper found symmetric metrics inferior; here we only check
    // they run and produce a hierarchy over all types.
    for (auto metric :
         {divergence::MetricKind::KL, divergence::MetricKind::KLReversed,
          divergence::MetricKind::JSDivergence,
          divergence::MetricKind::JSDistance}) {
        RockConfig config;
        config.metric = metric;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        EXPECT_EQ(result.hierarchy.size(), 3);
    }
}

TEST(Pipeline, SlmFamilyIsConfigurable)
{
    corpus::CorpusProgram example = corpus::echoparams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);

    for (auto kind : {slm::ModelKind::PpmC, slm::ModelKind::Katz,
                      slm::ModelKind::NGram}) {
        RockConfig config;
        config.slm.kind = kind;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        // Any reasonable sequence model resolves echoparams' star.
        EXPECT_LE(d.avg_missing, 0.25) << static_cast<int>(kind);
    }
}

TEST(Pipeline, SlmDepthSweep)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (int depth : {1, 2, 3, 4}) {
        RockConfig config;
        config.slm.depth = depth;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0)
            << "depth " << depth;
    }
}

TEST(Pipeline, TraceletLengthSweep)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (int len : {3, 5, 7, 11}) {
        RockConfig config;
        config.symexec.tracelet_len = len;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0)
            << "tracelet_len " << len;
    }
}

TEST(Pipeline, EmptyImageYieldsEmptyHierarchy)
{
    bir::BinaryImage empty;
    ReconstructionResult result = reconstruct(empty);
    EXPECT_EQ(result.hierarchy.size(), 0);
    EXPECT_TRUE(result.families.empty());
}

TEST(MajorityFilter, ThreeForestTwoOneSplitDropsDissenter)
{
    // Position 1: two forests vote parent 0, one votes parent 2 --
    // the 2-1 strict majority drops the dissenter. Position 2 then
    // splits 1-1 between the survivors, which is no strict majority,
    // so exactly the two agreeing forests remain, in order.
    graph::Arborescence a;
    a.parent = {-1, 0, 1};
    graph::Arborescence b;
    b.parent = {-1, 0, 0};
    graph::Arborescence c;
    c.parent = {-1, 2, 0};
    std::vector<graph::Arborescence> forests{a, b, c};
    detail::majority_filter(forests);
    ASSERT_EQ(forests.size(), 2u);
    EXPECT_EQ(forests[0].parent, (std::vector<int>{-1, 0, 1}));
    EXPECT_EQ(forests[1].parent, (std::vector<int>{-1, 0, 0}));
}

TEST(MajorityFilter, UnanimousPositionsFilterNothing)
{
    // Every position is either unanimous or an even split: no forest
    // may be dropped.
    graph::Arborescence a;
    a.parent = {-1, 0, 0};
    graph::Arborescence b;
    b.parent = {-1, 0, 1};
    std::vector<graph::Arborescence> forests{a, b};
    detail::majority_filter(forests);
    ASSERT_EQ(forests.size(), 2u);
    EXPECT_EQ(forests[0].parent, (std::vector<int>{-1, 0, 0}));
    EXPECT_EQ(forests[1].parent, (std::vector<int>{-1, 0, 1}));
}

TEST(MajorityFilter, CascadesUntilFixpoint)
{
    // Dropping the position-1 dissenter leaves a 2-1 majority at
    // position 2... (3-1 at position 1, then 2-1 at position 2):
    // the filter must iterate to the single survivor pair.
    graph::Arborescence a;
    a.parent = {-1, 0, 1};
    graph::Arborescence b;
    b.parent = {-1, 0, 1};
    graph::Arborescence c;
    c.parent = {-1, 0, 0};
    graph::Arborescence d;
    d.parent = {-1, 2, 0};
    std::vector<graph::Arborescence> forests{a, b, c, d};
    detail::majority_filter(forests);
    // Position 1: 0 wins 3-1, d dropped. Position 2: 1 wins 2-1,
    // c dropped. Survivors agree everywhere -> fixpoint.
    ASSERT_EQ(forests.size(), 2u);
    EXPECT_EQ(forests[0].parent, (std::vector<int>{-1, 0, 1}));
    EXPECT_EQ(forests[1].parent, (std::vector<int>{-1, 0, 1}));
}

TEST(Pipeline, WordSetStrategiesAgreeOnStreams)
{
    corpus::CorpusProgram example = corpus::streams_program();
    toyc::CompileResult compiled =
        toyc::compile(example.program, example.options);
    eval::GroundTruth gt = eval::ground_truth_from_debug(compiled.debug);
    for (auto strategy : {divergence::WordSetStrategy::ObservedUnion,
                          divergence::WordSetStrategy::Sampled}) {
        RockConfig config;
        config.words.strategy = strategy;
        ReconstructionResult result =
            reconstruct(compiled.image, config);
        eval::AppDistance d =
            eval::application_distance(result.hierarchy, gt);
        EXPECT_DOUBLE_EQ(d.avg_missing + d.avg_added, 0.0);
    }
}

} // namespace

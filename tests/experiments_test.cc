/**
 * @file
 * Tests for the experiments runner (the fast case studies; the full
 * Table 2 run lives in the rockbench tool and the bench harnesses).
 */
#include <gtest/gtest.h>

#include "experiments/experiments.h"

namespace {

using namespace rock::experiments;

TEST(Experiments, EchoparamsCaseMatchesPaper)
{
    EchoparamsCase out = run_echoparams_case();
    EXPECT_EQ(out.structural_hierarchies, 64u);
    EXPECT_DOUBLE_EQ(out.without_slm.avg_added, 2.25);
    EXPECT_DOUBLE_EQ(out.with_slm.avg_added, 0.0);
    EXPECT_DOUBLE_EQ(out.with_slm.avg_missing, 0.0);
}

TEST(Experiments, SplicingCaseMatchesFig9)
{
    SplicingCase out = run_splicing_case();
    EXPECT_EQ(out.gt_roots, 4);
    EXPECT_EQ(out.spliced_pairs, 2);
    EXPECT_DOUBLE_EQ(out.distance.avg_missing, 0.0);
    EXPECT_NEAR(out.distance.avg_added, 0.5, 1e-9);
}

TEST(Experiments, MetricComparisonRanksKlFirst)
{
    auto scores = run_metric_comparison();
    ASSERT_EQ(scores.size(), 4u);
    EXPECT_EQ(scores[0].metric, "kl");
    for (std::size_t i = 1; i < scores.size(); ++i) {
        EXPECT_LE(scores[0].total_missing_plus_added,
                  scores[i].total_missing_plus_added + 1e-9)
            << scores[i].metric;
    }
}

TEST(Experiments, ScalabilityIsRoughlyLinear)
{
    auto points = run_scalability();
    ASSERT_GE(points.size(), 3u);
    double first = points.front().analyze_ms * 1000.0 /
                   static_cast<double>(points.front().functions);
    double last = points.back().analyze_ms * 1000.0 /
                  static_cast<double>(points.back().functions);
    EXPECT_LT(last, 20.0 * first);
    // Paths grow with program size (the analysis really ran).
    EXPECT_GT(points.back().paths, points.front().paths);
}

TEST(Experiments, TypeinfFusionStrictlyImprovesMiCorpus)
{
    TypeinfAblation out = run_typeinf_ablation();
    EXPECT_GT(out.solved_facts, 0u);
    // The fused objective repairs every decoy edge: no missing
    // relations, strictly better than the DKL-only baseline in both
    // the chosen hierarchy and the worst surviving alternative.
    EXPECT_DOUBLE_EQ(out.with_typeinf.avg_missing, 0.0);
    double base = out.dkl_only.avg_missing + out.dkl_only.avg_added;
    double fused =
        out.with_typeinf.avg_missing + out.with_typeinf.avg_added;
    EXPECT_LT(fused, base);
    double base_worst =
        out.dkl_only_worst.avg_missing + out.dkl_only_worst.avg_added;
    double fused_worst = out.with_typeinf_worst.avg_missing +
                         out.with_typeinf_worst.avg_added;
    EXPECT_LT(fused_worst, base_worst);
    // Bit-identical across thread counts.
    EXPECT_TRUE(out.thread_invariant);
}

TEST(Experiments, CfiTradeoffIsMonotone)
{
    auto points = run_cfi_tradeoff();
    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LE(points[i].avg_missing,
                  points[i - 1].avg_missing + 1e-9);
        EXPECT_GE(points[i].avg_added,
                  points[i - 1].avg_added - 1e-9);
    }
}

} // namespace
